//! Gomory mixed-integer (GMI) cuts read off the optimal simplex tableau.
//!
//! For a basic integer variable `x_j` with fractional value, the tableau row
//! (one btran against the final LU factorization, see
//! [`extract_tableau_rows`]) expresses `x_j` in terms of the nonbasic
//! variables. Shifting every nonbasic to its resting bound gives
//! `x_j + Σ â_k t_k = b` with all `t_k >= 0`, and the GMI formula turns the
//! fractionality of `b` into a valid inequality `Σ γ_k t_k >= f0` that the
//! current LP point violates by exactly `f0`. Unshifting the `t_k` and
//! eliminating slack variables through their defining rows `s_r = A_r x`
//! yields a cut over the structural variables only.
//!
//! GMI cuts are derived from the *root* bounds and are only offered at the
//! root (see the module docs of [`super`]); inside the tree the bounds
//! differ and the same derivation would not be globally valid.

use super::{Cut, CutContext, CutSource, SepInput, Separator, MIN_VIOLATION};
use crate::simplex::{extract_tableau_rows, TableauRow, VStat};

/// Basic variables whose fractional part is closer than this to 0 or 1
/// produce numerically poor cuts (the `f0 / (1 - f0)` multiplier blows up)
/// and are skipped.
const FRAC_TOL: f64 = 5e-3;

/// Tableau coefficients below this magnitude are treated as exact zeros.
const COEF_ZERO: f64 = 1e-11;

/// Tableau-based GMI separator.
pub struct GomorySeparator;

impl Separator for GomorySeparator {
    fn name(&self) -> &'static str {
        "gomory"
    }

    fn separate(&self, inp: &SepInput<'_>, ctx: &CutContext, out: &mut Vec<Cut>) {
        let Some(statuses) = inp.statuses else {
            return;
        };
        separate_gomory(inp, statuses, ctx, out);
    }
}

fn frac(v: f64) -> f64 {
    v - v.floor()
}

pub(crate) fn separate_gomory(
    inp: &SepInput<'_>,
    statuses: &[VStat],
    ctx: &CutContext,
    out: &mut Vec<Cut>,
) {
    let n = inp.lp.num_vars();
    // Candidate rows: basic integer variables with usefully fractional
    // values, most fractional (closest to .5) first.
    let mut cand: Vec<(usize, f64)> = (0..n)
        .filter(|&j| {
            ctx.is_int[j]
                && statuses[j] == VStat::Basic
                && (FRAC_TOL..=1.0 - FRAC_TOL).contains(&frac(inp.x[j]))
        })
        .map(|j| (j, (frac(inp.x[j]) - 0.5).abs()))
        .collect();
    cand.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
    cand.truncate(inp.max_cuts);
    if cand.is_empty() {
        return;
    }
    let wanted: Vec<usize> = cand.iter().map(|&(j, _)| j).collect();
    let Some(rows) = extract_tableau_rows(inp.lp, inp.var_lb, inp.var_ub, inp.cfg, statuses, &wanted)
    else {
        return;
    };
    // Slack elimination needs rows of A; the transpose gives row r as a
    // column.
    let at = inp.lp.a.transpose();
    let mut dense = vec![0.0f64; n];
    let mut touched: Vec<usize> = Vec::new();
    for row in rows {
        if let Some(cut) = gmi_from_row(&row, inp, statuses, ctx, &at, &mut dense, &mut touched) {
            out.push(cut);
        }
        for &j in &touched {
            dense[j] = 0.0;
        }
        touched.clear();
    }
}

/// Derives one GMI cut `g^T x >= d` from a tableau row, or `None` when the
/// row is unusable (free nonbasic with a nonzero coefficient, infinite
/// resting bound, or the final violation check fails).
#[allow(clippy::too_many_arguments)]
fn gmi_from_row(
    row: &TableauRow,
    inp: &SepInput<'_>,
    statuses: &[VStat],
    ctx: &CutContext,
    at: &crate::sparse::CscMatrix,
    dense: &mut [f64],
    touched: &mut Vec<usize>,
) -> Option<Cut> {
    let n = inp.lp.num_vars();
    let b = row.rhs;
    let f0 = frac(b);
    if !(FRAC_TOL..=1.0 - FRAC_TOL).contains(&f0) {
        return None;
    }
    let mul = f0 / (1.0 - f0);
    // Add `w` to the structural coefficient of variable j.
    let add = |dense: &mut [f64], touched: &mut Vec<usize>, j: usize, w: f64| {
        if dense[j] == 0.0 {
            touched.push(j);
        }
        dense[j] += w;
    };
    // Right-hand side of the >= cut, accumulated while unshifting.
    let mut d = f0;
    // The basic variable itself: x_j appears with coefficient 0 in the GMI
    // (its tableau coefficient is 1, integral), nothing to add.
    for &(k, a) in &row.coefs {
        // Resting bound of augmented variable k (structural bound or the
        // slack's row range).
        let (lk, uk) = if k < n {
            (inp.var_lb[k], inp.var_ub[k])
        } else {
            (inp.lp.row_lb[k - n], inp.lp.row_ub[k - n])
        };
        let (ahat, at_lower) = match statuses[k] {
            VStat::AtLower => {
                if !lk.is_finite() {
                    return None;
                }
                (a, true)
            }
            VStat::AtUpper => {
                if !uk.is_finite() {
                    return None;
                }
                (-a, false)
            }
            VStat::Free => {
                if a.abs() > 1e-9 {
                    return None;
                }
                continue;
            }
            VStat::Basic => continue, // extract_tableau_rows never emits these
        };
        // Integer GMI coefficient only when the shifted variable t_k is
        // genuinely integral: structural integer with an integral resting
        // bound. Slacks are always treated as continuous (valid, slightly
        // weaker when a row happens to be all-integer).
        let rest = if at_lower { lk } else { uk };
        let integral = k < n && ctx.is_int[k] && (rest - rest.round()).abs() < 1e-9;
        let gamma = if integral {
            let fk = frac(ahat);
            if fk <= f0 {
                fk
            } else {
                mul * (1.0 - fk)
            }
        } else if ahat >= 0.0 {
            ahat
        } else {
            mul * (-ahat)
        };
        if gamma.abs() < COEF_ZERO {
            continue;
        }
        // Unshift t_k back to the augmented variable z_k:
        //   at lower: t = z - l  ->  +gamma z, d += gamma * l
        //   at upper: t = u - z  ->  -gamma z, d -= gamma * u
        let (w, shift) = if at_lower {
            (gamma, gamma * lk)
        } else {
            (-gamma, -gamma * uk)
        };
        d += shift;
        if k < n {
            add(dense, touched, k, w);
        } else {
            // Slack elimination: s_r = A_r x, so w * s_r becomes w * A_r.
            for (j, v) in at.col(k - n) {
                add(dense, touched, j, w * v);
            }
        }
    }
    touched.sort_unstable();
    touched.dedup();
    let coefs: Vec<(usize, f64)> = touched
        .iter()
        .filter(|&&j| dense[j].abs() > COEF_ZERO)
        .map(|&j| (j, dense[j]))
        .collect();
    if coefs.is_empty() {
        return None;
    }
    // The derivation predicts a violation of exactly f0 in t-space; verify
    // in x-space to catch any numerical degradation along the way.
    let act: f64 = coefs.iter().map(|&(j, v)| v * inp.x[j]).sum();
    if d - act < MIN_VIOLATION {
        return None;
    }
    Some(Cut {
        coefs,
        lb: d,
        ub: f64::INFINITY,
        source: CutSource::Gomory,
    })
}
