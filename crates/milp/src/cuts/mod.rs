//! Cutting-plane subsystem: separation framework, cut pool, and concrete
//! separators.
//!
//! Separation runs in **rounds**: every enabled [`Separator`] proposes
//! violated valid inequalities for the current LP relaxation point, the
//! [`CutPool`] filters them (deduplication, numerical safety, efficacy,
//! pairwise parallelism), and the survivors are appended to the LP via
//! [`LpData::append_rows`] and reoptimized with the **dual simplex**:
//! appending a row whose slack enters the basis keeps the old basis
//! dual-feasible, so each round costs a handful of dual pivots instead of a
//! cold resolve.
//!
//! Validity discipline: every cut must hold for *all* integer-feasible
//! points of the original problem, so cuts can be shared freely across the
//! branch-and-bound tree. Cover and clique cuts derive from original rows
//! and are always globally valid; Gomory cuts are derived **only at the
//! root** with the root bounds — a Gomory cut derived from a node's
//! tightened bounds would only be valid in that subtree, so node-level
//! separation (see [`separate_node`]) runs cover + clique only.

pub mod clique;
pub mod cover;
pub mod gomory;

use crate::config::{Config, CutConfig};
use crate::problem::{Problem, VarType};
use crate::simplex::{solve_lp, LpData, LpResult, SparseRow, VStat};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashSet;
use std::hash::{Hash, Hasher};
use std::time::Instant;

/// Minimum violation for a cut to be worth applying; below this the PR 2
/// stall detectors could end up chasing noise from our own rows.
pub const MIN_VIOLATION: f64 = 1e-6;
/// Maximum allowed ratio between the largest and smallest nonzero cut
/// coefficient; wider dynamic ranges degrade the LU factorization.
pub const MAX_DYNAMIC_RANGE: f64 = 1e8;
/// Coefficients below this fraction of the row's largest magnitude are
/// dropped (with a conservative right-hand-side adjustment).
const TINY_REL: f64 = 1e-11;

/// Which separator produced a cut (diagnostics and tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CutSource {
    /// Gomory mixed-integer cut from the optimal simplex tableau.
    Gomory,
    /// Lifted knapsack cover cut.
    Cover,
    /// Clique/GUB cut from the binary conflict graph.
    Clique,
}

/// One cutting plane over the structural variables: `lb <= g^T x <= ub`
/// (one of the bounds is typically infinite).
#[derive(Debug, Clone)]
pub struct Cut {
    /// Sparse coefficients, sorted by variable index, duplicates merged.
    pub coefs: Vec<(usize, f64)>,
    /// Row lower bound.
    pub lb: f64,
    /// Row upper bound.
    pub ub: f64,
    /// Producing separator.
    pub source: CutSource,
}

impl Cut {
    /// Activity `g^T x` at a point.
    pub fn activity(&self, x: &[f64]) -> f64 {
        self.coefs.iter().map(|&(j, v)| v * x[j]).sum()
    }

    /// Violation at `x`: how far the activity lies outside `[lb, ub]`.
    pub fn violation(&self, x: &[f64]) -> f64 {
        let a = self.activity(x);
        (self.lb - a).max(a - self.ub).max(0.0)
    }

    /// Euclidean norm of the coefficient vector.
    pub fn norm(&self) -> f64 {
        self.coefs
            .iter()
            .map(|&(_, v)| v * v)
            .sum::<f64>()
            .sqrt()
    }

    /// Cosine of the angle between two cuts' coefficient vectors (both
    /// assumed sorted by index). Near ±1 means near-parallel rows.
    pub fn cosine(&self, other: &Cut) -> f64 {
        let (na, nb) = (self.norm(), other.norm());
        if na == 0.0 || nb == 0.0 {
            return 0.0;
        }
        let mut dot = 0.0;
        let (mut i, mut k) = (0, 0);
        while i < self.coefs.len() && k < other.coefs.len() {
            let (ja, va) = self.coefs[i];
            let (jb, vb) = other.coefs[k];
            match ja.cmp(&jb) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => k += 1,
                std::cmp::Ordering::Equal => {
                    dot += va * vb;
                    i += 1;
                    k += 1;
                }
            }
        }
        dot / (na * nb)
    }

    /// Normalized content hash for pool deduplication: coefficients are
    /// scaled so the largest magnitude is 1 and quantized, so rescaled
    /// copies of the same cut collide.
    fn content_hash(&self) -> u64 {
        let mut h = DefaultHasher::new();
        let max = self
            .coefs
            .iter()
            .map(|&(_, v)| v.abs())
            .fold(0.0f64, f64::max);
        let scale = if max > 0.0 { 1.0 / max } else { 1.0 };
        let q = |v: f64| (v * scale * 1e9).round() as i64;
        for &(j, v) in &self.coefs {
            j.hash(&mut h);
            q(v).hash(&mut h);
        }
        if self.lb.is_finite() {
            q(self.lb).hash(&mut h);
        } else {
            u64::MAX.hash(&mut h);
        }
        if self.ub.is_finite() {
            q(self.ub).hash(&mut h);
        } else {
            u64::MAX.hash(&mut h);
        }
        h.finish()
    }

    /// Numerical-safety pass: merges/sorts coefficients, rejects non-finite
    /// data, drops tiny coefficients with a conservative bound adjustment
    /// (the cut is *relaxed*, never tightened, so validity is preserved),
    /// and rejects cuts whose coefficient dynamic range exceeds
    /// [`MAX_DYNAMIC_RANGE`]. Returns `None` when the cut is unusable.
    pub fn sanitize(mut self, var_lb: &[f64], var_ub: &[f64]) -> Option<Cut> {
        if !self.lb.is_finite() && !self.ub.is_finite() {
            return None;
        }
        self.coefs.sort_unstable_by_key(|&(j, _)| j);
        let mut merged: Vec<(usize, f64)> = Vec::with_capacity(self.coefs.len());
        for &(j, v) in &self.coefs {
            if !v.is_finite() {
                return None;
            }
            match merged.last_mut() {
                Some((jl, vl)) if *jl == j => *vl += v,
                _ => merged.push((j, v)),
            }
        }
        let max = merged.iter().map(|&(_, v)| v.abs()).fold(0.0f64, f64::max);
        if max == 0.0 || !max.is_finite() {
            return None;
        }
        let tiny = TINY_REL * max;
        let mut kept: Vec<(usize, f64)> = Vec::with_capacity(merged.len());
        let (mut lb, mut ub) = (self.lb, self.ub);
        for (j, v) in merged {
            if v.abs() > tiny {
                kept.push((j, v));
                continue;
            }
            if v == 0.0 {
                continue;
            }
            // Dropping g_j * x_j with x_j in [l, u]: the term's range is
            // [t_min, t_max]; relax the row bounds by the worst case so
            // every point feasible before stays feasible after.
            let (l, u) = (var_lb[j], var_ub[j]);
            let (t_min, t_max) = if v >= 0.0 { (v * l, v * u) } else { (v * u, v * l) };
            if lb.is_finite() {
                if !t_max.is_finite() {
                    kept.push((j, v));
                    continue;
                }
                lb -= t_max;
            }
            if ub.is_finite() {
                if !t_min.is_finite() {
                    kept.push((j, v));
                    continue;
                }
                ub -= t_min;
            }
        }
        if kept.is_empty() {
            return None;
        }
        let min = kept
            .iter()
            .map(|&(_, v)| v.abs())
            .fold(f64::INFINITY, f64::min);
        if max / min > MAX_DYNAMIC_RANGE {
            return None;
        }
        if (lb.is_finite() && lb.abs() > MAX_DYNAMIC_RANGE * max)
            || (ub.is_finite() && ub.abs() > MAX_DYNAMIC_RANGE * max)
        {
            return None;
        }
        Some(Cut {
            coefs: kept,
            lb,
            ub,
            source: self.source,
        })
    }
}

/// Problem-structure context shared by all separators: integrality flags,
/// knapsack candidate rows, and the binary conflict graph seeded from GUB
/// annotations ([`Problem::mark_gub`]) plus structurally detected pairwise
/// conflicts.
#[derive(Debug)]
pub struct CutContext {
    /// Number of structural variables.
    pub n: usize,
    /// Per-variable integrality.
    pub is_int: Vec<bool>,
    /// Per-variable "binary" flag (integer with bounds within `[0, 1]`).
    pub is_binary: Vec<bool>,
    /// All-binary rows usable as knapsack candidates: `(coefs, lb, ub)`.
    pub knapsack_rows: Vec<SparseRow>,
    /// Validated GUB groups (members of one-candidate disjunctions).
    pub gub_groups: Vec<Vec<usize>>,
    /// Pairwise conflict edges (ordered pairs `u < v`): `x_u + x_v <= 1`.
    conflicts: HashSet<(usize, usize)>,
}

impl CutContext {
    /// Builds the context from a (presolved) problem.
    pub fn from_problem(p: &Problem) -> Self {
        let n = p.num_vars();
        let mut is_int = vec![false; n];
        let mut is_binary = vec![false; n];
        for j in 0..n {
            let id = p.var_id(j);
            let integral = p.var_type(id) != VarType::Continuous;
            is_int[j] = integral;
            let (l, u) = p.var_bounds(id);
            is_binary[j] = integral && l >= -1e-9 && u <= 1.0 + 1e-9;
        }
        let mut knapsack_rows = Vec::new();
        for r in p.row_ids() {
            let coefs = p.row_coefs(r);
            if coefs.len() < 2 {
                continue;
            }
            let (lo, hi) = p.row_bounds(r);
            if !lo.is_finite() && !hi.is_finite() {
                continue;
            }
            if !coefs.iter().all(|&(v, _)| is_binary[v.index()]) {
                continue;
            }
            // merge duplicates into index-sorted form
            let mut merged: Vec<(usize, f64)> =
                coefs.iter().map(|&(v, c)| (v.index(), c)).collect();
            merged.sort_unstable_by_key(|&(j, _)| j);
            let mut out: Vec<(usize, f64)> = Vec::with_capacity(merged.len());
            for (j, c) in merged {
                match out.last_mut() {
                    Some((jl, cl)) if *jl == j => *cl += c,
                    _ => out.push((j, c)),
                }
            }
            out.retain(|&(_, c)| c != 0.0);
            if out.len() >= 2 {
                knapsack_rows.push((out, lo, hi));
            }
        }
        // Validate GUB hints: all-binary, unit coefficients, rhs 1. A row
        // reshaped by presolve (substituted fixed variable, shifted rhs)
        // simply fails validation and is ignored.
        let mut gub_groups = Vec::new();
        let mut conflicts = HashSet::new();
        for &r in p.gub_rows() {
            let coefs = p.row_coefs(r);
            let (lo, hi) = p.row_bounds(r);
            let rhs_ok = hi.is_finite() && (hi - 1.0).abs() < 1e-9 && lo <= hi + 1e-9;
            let shape_ok = coefs.len() >= 2
                && coefs
                    .iter()
                    .all(|&(v, c)| is_binary[v.index()] && (c - 1.0).abs() < 1e-9);
            if !(rhs_ok && shape_ok) {
                continue;
            }
            let members: Vec<usize> = coefs.iter().map(|&(v, _)| v.index()).collect();
            for a in 0..members.len() {
                for b in a + 1..members.len() {
                    let (u, v) = ordered(members[a], members[b]);
                    conflicts.insert((u, v));
                }
            }
            gub_groups.push(members);
        }
        // Structural pairwise conflicts: two-binary rows where (1, 1) is
        // infeasible while the row admits some assignment.
        for (coefs, lo, hi) in &knapsack_rows {
            if coefs.len() != 2 {
                continue;
            }
            let (j0, c0) = coefs[0];
            let (j1, c1) = coefs[1];
            let both = c0 + c1;
            let feasible_some = [0.0, c0, c1]
                .iter()
                .any(|&a| a >= lo - 1e-9 && a <= hi + 1e-9);
            if feasible_some && (both > hi + 1e-9 || both < lo - 1e-9) {
                conflicts.insert(ordered(j0, j1));
            }
        }
        CutContext {
            n,
            is_int,
            is_binary,
            knapsack_rows,
            gub_groups,
            conflicts,
        }
    }

    /// Whether `u` and `v` cannot both be 1.
    pub fn conflicting(&self, u: usize, v: usize) -> bool {
        u != v && self.conflicts.contains(&ordered(u, v))
    }

    /// Whether any separator has raw material to work with.
    pub fn has_structure(&self) -> bool {
        !self.knapsack_rows.is_empty() || !self.conflicts.is_empty()
    }
}

fn ordered(a: usize, b: usize) -> (usize, usize) {
    if a < b {
        (a, b)
    } else {
        (b, a)
    }
}

/// Everything a separator may inspect for one separation call.
pub struct SepInput<'a> {
    /// Current LP (including previously applied cut rows).
    pub lp: &'a LpData,
    /// Structural variable lower bounds the LP was solved with.
    pub var_lb: &'a [f64],
    /// Structural variable upper bounds.
    pub var_ub: &'a [f64],
    /// The fractional point to separate.
    pub x: &'a [f64],
    /// Optimal basis statuses (needed by tableau-based separators).
    pub statuses: Option<&'a [VStat]>,
    /// Solver configuration (tolerances, fault hooks).
    pub cfg: &'a Config,
    /// Soft cap on cuts to generate in this call.
    pub max_cuts: usize,
}

/// A cutting-plane separator: proposes violated valid inequalities for a
/// fractional LP point.
pub trait Separator: Send + Sync {
    /// Diagnostic name.
    fn name(&self) -> &'static str;
    /// Appends violated cuts for `inp.x` to `out`.
    fn separate(&self, inp: &SepInput<'_>, ctx: &CutContext, out: &mut Vec<Cut>);
}

/// The separators enabled by `cfg`, in application order. `root` includes
/// tableau-based (Gomory) separation, which is only globally valid when
/// derived at the root bounds.
pub fn enabled_separators(cfg: &CutConfig, root: bool) -> Vec<Box<dyn Separator>> {
    let mut v: Vec<Box<dyn Separator>> = Vec::new();
    if !cfg.enabled {
        return v;
    }
    if cfg.clique {
        v.push(Box::new(clique::CliqueSeparator));
    }
    if cfg.cover {
        v.push(Box::new(cover::CoverSeparator));
    }
    if cfg.gomory && root {
        v.push(Box::new(gomory::GomorySeparator));
    }
    v
}

#[derive(Debug, Clone)]
struct PoolEntry {
    cut: Cut,
    age: usize,
}

/// Deduplicating cut pool with activity-based aging.
///
/// Offered cuts pass the numerical-safety pass ([`Cut::sanitize`]) and a
/// normalized content hash before entering the pending set. Each
/// [`CutPool::select`] call scores pending cuts against the current
/// fractional point and moves the best ones — subject to efficacy and
/// pairwise-parallelism filters — onto the **append-only applied list**,
/// whose global order lets parallel workers extend their local LPs by
/// prefix (a node's warm basis stays index-consistent because later cuts
/// only ever append rows). Pending cuts not selected age by one per round
/// and are evicted past `max_age`.
#[derive(Debug, Default)]
pub struct CutPool {
    pending: Vec<PoolEntry>,
    applied: Vec<Cut>,
    seen: HashSet<u64>,
    /// Cuts offered by separators (pre-filter).
    pub generated: usize,
    /// Separation rounds run through this pool ([`CutPool::select`] calls).
    pub rounds: usize,
}

impl CutPool {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Offers one cut: sanitize, deduplicate, and hold it as pending.
    /// Returns whether the cut entered the pool.
    pub fn offer(&mut self, cut: Cut, var_lb: &[f64], var_ub: &[f64]) -> bool {
        self.generated += 1;
        let Some(cut) = cut.sanitize(var_lb, var_ub) else {
            return false;
        };
        if !self.seen.insert(cut.content_hash()) {
            return false;
        }
        self.pending.push(PoolEntry { cut, age: 0 });
        true
    }

    /// Selects up to `cfg.max_cuts_per_round` pending cuts violated at `x`,
    /// moves them to the applied list, ages the rest, and returns clones of
    /// the newly applied cuts (in applied order).
    pub fn select(&mut self, x: &[f64], cfg: &CutConfig) -> Vec<Cut> {
        self.rounds += 1;
        // Score pending cuts: (index, violation, efficacy).
        let mut scored: Vec<(usize, f64, f64)> = self
            .pending
            .iter()
            .enumerate()
            .filter_map(|(i, e)| {
                let viol = e.cut.violation(x);
                let norm = e.cut.norm();
                if norm == 0.0 || viol < MIN_VIOLATION {
                    return None;
                }
                let eff = viol / norm;
                (eff >= cfg.min_efficacy).then_some((i, viol, eff))
            })
            .collect();
        scored.sort_by(|a, b| b.2.partial_cmp(&a.2).unwrap_or(std::cmp::Ordering::Equal));
        let mut picked_idx: Vec<usize> = Vec::new();
        for &(i, _, _) in &scored {
            if picked_idx.len() >= cfg.max_cuts_per_round {
                break;
            }
            let cand = &self.pending[i].cut;
            let parallel = picked_idx
                .iter()
                .any(|&k| self.pending[k].cut.cosine(cand).abs() > cfg.max_parallelism);
            if !parallel {
                picked_idx.push(i);
            }
        }
        // Move picks to the applied list (order = pick order), age the rest.
        picked_idx.sort_unstable();
        let mut selected = Vec::with_capacity(picked_idx.len());
        for &i in picked_idx.iter().rev() {
            selected.push(self.pending.swap_remove(i).cut);
        }
        selected.reverse();
        for e in &mut self.pending {
            e.age += 1;
        }
        self.pending.retain(|e| e.age <= cfg.max_age);
        // Hard cap on pool size: keep the youngest pending entries.
        let budget = cfg.max_pool.saturating_sub(self.applied.len());
        if self.pending.len() > budget {
            self.pending.sort_by_key(|e| e.age);
            self.pending.truncate(budget);
        }
        self.applied.extend(selected.iter().cloned());
        selected
    }

    /// The append-only list of applied cuts, in global application order.
    pub fn applied(&self) -> &[Cut] {
        &self.applied
    }

    /// Number of cuts applied so far.
    pub fn applied_len(&self) -> usize {
        self.applied.len()
    }

    /// Number of cuts pending selection.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Appends a cut directly to the applied list, bypassing every filter.
    /// Only used by fault injection to plant a pathological row.
    pub fn force_apply(&mut self, cut: Cut) -> Cut {
        self.applied.push(cut.clone());
        cut
    }

    /// Rebuilds the applied list (and its dedup set) from a checkpoint
    /// frame, preserving the append-only global order. The restored cuts
    /// are already sanitized — they passed [`CutPool::offer`] in the run
    /// that wrote the frame.
    pub fn restore_applied(&mut self, cuts: Vec<Cut>) {
        for c in cuts {
            self.seen.insert(c.content_hash());
            self.applied.push(c);
        }
    }
}

/// Converts applied cuts into `append_rows` form.
pub fn cuts_to_rows(cuts: &[Cut]) -> Vec<SparseRow> {
    cuts.iter()
        .map(|c| (c.coefs.clone(), c.lb, c.ub))
        .collect()
}

/// Rows a worker whose LP carries the first `local` applied cuts still has
/// to append. Tolerates every relative position the append-only global
/// order allows — including a restored LP *behind* the pool (the resume
/// case: extra post-root cuts in the frame are caught up lazily) and a
/// `local` count at or past the pool's length (nothing to do), which a
/// naive `&applied[local..]` slice would panic on.
pub fn catch_up_rows(applied: &[Cut], local: usize) -> Vec<SparseRow> {
    match applied.get(local..) {
        Some(suffix) if !suffix.is_empty() => cuts_to_rows(suffix),
        _ => Vec::new(),
    }
}

/// Outcome of the root separation loop.
#[derive(Debug, Clone, Copy, Default)]
pub struct RootCutOutcome {
    /// Separation rounds run.
    pub rounds: usize,
    /// Cuts offered by separators.
    pub generated: usize,
    /// Cuts appended to the LP.
    pub applied: usize,
}

/// Runs round-based separation at the root: separate, filter through the
/// pool, append the survivors, and dual-reoptimize from the old basis
/// padded with one basic slack per new row. `lp` and `root` are updated in
/// place; on any non-optimal reoptimization the round is rolled back and
/// the loop stops, so the caller always continues from a consistent
/// (LP, result) pair.
#[allow(clippy::too_many_arguments)]
pub fn run_root_cuts(
    lp: &mut LpData,
    var_lb: &[f64],
    var_ub: &[f64],
    cfg: &Config,
    ctx: &CutContext,
    root: &mut LpResult,
    pool: &mut CutPool,
    deadline: Option<Instant>,
) -> RootCutOutcome {
    let mut out = RootCutOutcome::default();
    let ccfg = &cfg.cuts;
    if !ccfg.enabled || root.status != crate::simplex::LpStatus::Optimal {
        return out;
    }
    let separators = enabled_separators(ccfg, true);
    if separators.is_empty() {
        return out;
    }
    // Reoptimize with the dual simplex even though the padded basis is
    // "cold" from ReoptMode::Auto's perspective (it was never optimal for
    // the extended LP) — it *is* dual-feasible by construction. An explicit
    // Primal override is honored (that mode guarantees zero dual pivots).
    let reopt_cfg = if cfg.reopt == crate::config::ReoptMode::Primal {
        cfg.clone()
    } else {
        cfg.clone().with_reopt(crate::config::ReoptMode::Dual)
    };
    let mut injected = false;
    for _ in 0..ccfg.max_rounds {
        if deadline.is_some_and(|d| Instant::now() >= d) || cfg.is_cancelled() {
            break;
        }
        let inp = SepInput {
            lp,
            var_lb,
            var_ub,
            x: &root.x,
            statuses: Some(&root.statuses),
            cfg,
            max_cuts: ccfg.max_cuts_per_round,
        };
        let mut found = Vec::new();
        for s in &separators {
            s.separate(&inp, ctx, &mut found);
        }
        for c in found {
            pool.offer(c, var_lb, var_ub);
        }
        out.rounds += 1;
        // Mid-round cancellation point: a cancel that lands while the
        // separators run must abort here, before selection marks anything
        // applied and before the (expensive) append + reoptimize — not at
        // the top of the *next* round. The fault hook fires scheduled test
        // cancellations at exactly this spot so the within-one-round
        // latency guarantee stays pinned. Separated cuts stay pending in
        // the pool; nothing touches the LP.
        if let Some(f) = cfg.faults.as_ref() {
            f.mark_cut_round();
        }
        if cfg.is_cancelled() {
            // Selection never ran, so count the separation round here to
            // keep `rounds` = "separation rounds actually executed".
            pool.rounds += 1;
            break;
        }
        let mut selected = pool.select(&root.x, ccfg);
        // Fault injection: plant one near-parallel duplicate of an applied
        // cut, bypassing the parallelism filter, to prove the recovery
        // ladder absorbs the near-singular basis it produces.
        if !injected
            && cfg
                .faults
                .as_ref()
                .is_some_and(|f| f.take_parallel_cut())
        {
            injected = true;
            if let Some(base) = selected.first().or_else(|| pool.applied().first()).cloned() {
                let twin = Cut {
                    coefs: base.coefs.iter().map(|&(j, v)| (j, v * (1.0 + 1e-9))).collect(),
                    // Slightly relaxed bounds keep the duplicate valid.
                    lb: if base.lb.is_finite() { base.lb - 1e-7 } else { base.lb },
                    ub: if base.ub.is_finite() { base.ub + 1e-7 } else { base.ub },
                    source: base.source,
                };
                selected.push(pool.force_apply(twin));
            }
        }
        if selected.is_empty() {
            break;
        }
        // Snapshot for rollback: a failed reoptimization must not leave a
        // half-extended LP behind.
        let lp_backup = lp.clone();
        let warm_len = root.statuses.len();
        lp.append_rows(&cuts_to_rows(&selected));
        let mut warm = Vec::with_capacity(warm_len + selected.len());
        warm.extend_from_slice(&root.statuses);
        warm.extend(std::iter::repeat_n(VStat::Basic, selected.len()));
        let reopt = solve_lp(lp, var_lb, var_ub, &reopt_cfg, Some(&warm), deadline);
        // Fault injection: treat this round's reoptimization as failed so
        // the rollback arm below runs under test control.
        let forced_failure = cfg
            .faults
            .as_ref()
            .is_some_and(|f| f.take_cut_reopt_failure());
        match reopt {
            Ok(r) if r.status == crate::simplex::LpStatus::Optimal && !forced_failure => {
                out.applied += selected.len();
                root.iters += r.iters;
                root.phase1_iters += r.phase1_iters;
                root.dual_iters += r.dual_iters;
                root.recoveries += r.recoveries;
                root.obj = r.obj;
                root.x = r.x;
                root.statuses = r.statuses;
                root.dj = r.dj;
                root.status = r.status;
            }
            _ => {
                // Cuts are valid inequalities, so a non-optimal outcome here
                // is numerical (or a limit): drop the round and stop.
                *lp = lp_backup;
                break;
            }
        }
    }
    out.generated = pool.generated;
    out
}

/// Node-level separation: the globally valid separators only (cover +
/// clique), offered into the shared pool. Returns how many cuts entered.
pub fn separate_node(
    ctx: &CutContext,
    x: &[f64],
    var_lb: &[f64],
    var_ub: &[f64],
    pool: &mut CutPool,
    max_cuts: usize,
) -> usize {
    let mut found = Vec::new();
    cover::separate_cover(ctx, x, max_cuts, &mut found);
    clique::separate_clique(ctx, x, max_cuts, &mut found);
    let mut entered = 0;
    for c in found {
        if pool.offer(c, var_lb, var_ub) {
            entered += 1;
        }
    }
    entered
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Row, Sense, Var};

    fn binary_problem() -> (Problem, Vec<crate::problem::VarId>) {
        let mut p = Problem::new(Sense::Maximize);
        let vars: Vec<_> = (0..4)
            .map(|i| p.add_var(Var::binary().obj(1.0 + i as f64)))
            .collect();
        (p, vars)
    }

    #[test]
    fn sanitize_merges_and_sorts() {
        let c = Cut {
            coefs: vec![(2, 1.0), (0, 2.0), (2, 0.5)],
            lb: f64::NEG_INFINITY,
            ub: 3.0,
            source: CutSource::Cover,
        };
        let s = c.sanitize(&[0.0; 3], &[1.0; 3]).expect("valid");
        assert_eq!(s.coefs, vec![(0, 2.0), (2, 1.5)]);
    }

    #[test]
    fn catch_up_rows_tolerates_every_relative_position() {
        let cut = |ub: f64| Cut {
            coefs: vec![(0, 1.0)],
            lb: f64::NEG_INFINITY,
            ub,
            source: CutSource::Cover,
        };
        let applied = vec![cut(1.0), cut(2.0), cut(3.0)];
        // Worker behind the pool (the resume catch-up case).
        let rows = catch_up_rows(&applied, 1);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].2, 2.0);
        // Worker exactly caught up, and past the pool: both are no-ops, not
        // slice panics.
        assert!(catch_up_rows(&applied, 3).is_empty());
        assert!(catch_up_rows(&applied, 7).is_empty());
        assert!(catch_up_rows(&[], 0).is_empty());
    }

    #[test]
    fn restore_applied_preserves_order_and_dedup() {
        let cut = |ub: f64| Cut {
            coefs: vec![(0, 1.0), (1, 1.0)],
            lb: f64::NEG_INFINITY,
            ub,
            source: CutSource::Clique,
        };
        let mut pool = CutPool::new();
        pool.restore_applied(vec![cut(1.0), cut(2.0)]);
        assert_eq!(pool.applied_len(), 2);
        assert_eq!(pool.applied()[1].ub, 2.0);
        // A restored cut re-offered by a separator after resume must be
        // recognized as a duplicate.
        assert!(!pool.offer(cut(1.0), &[0.0; 2], &[1.0; 2]));
        assert_eq!(pool.pending_len(), 0);
    }

    #[test]
    fn sanitize_rejects_dynamic_range() {
        let c = Cut {
            coefs: vec![(0, 1.0), (1, 1e9)],
            lb: f64::NEG_INFINITY,
            ub: 1.0,
            source: CutSource::Gomory,
        };
        assert!(c.sanitize(&[0.0; 2], &[1.0; 2]).is_none());
    }

    #[test]
    fn sanitize_drops_tiny_with_bound_relaxation() {
        // 1e-13 is tiny relative to 1.0: dropped, and the <= bound must be
        // relaxed by the worst case of the dropped term (t_min = 0 here).
        let c = Cut {
            coefs: vec![(0, 1.0), (1, 1e-13)],
            lb: f64::NEG_INFINITY,
            ub: 1.0,
            source: CutSource::Cover,
        };
        let s = c.sanitize(&[0.0; 2], &[1.0; 2]).expect("valid");
        assert_eq!(s.coefs.len(), 1);
        assert!(s.ub >= 1.0, "relaxed, never tightened: {}", s.ub);
    }

    #[test]
    fn sanitize_rejects_nonfinite() {
        let c = Cut {
            coefs: vec![(0, f64::NAN)],
            lb: 0.0,
            ub: 1.0,
            source: CutSource::Gomory,
        };
        assert!(c.sanitize(&[0.0], &[1.0]).is_none());
    }

    #[test]
    fn violation_and_cosine() {
        let a = Cut {
            coefs: vec![(0, 1.0), (1, 1.0)],
            lb: f64::NEG_INFINITY,
            ub: 1.0,
            source: CutSource::Clique,
        };
        assert!((a.violation(&[0.8, 0.8]) - 0.6).abs() < 1e-12);
        assert_eq!(a.violation(&[0.3, 0.3]), 0.0);
        let b = Cut {
            coefs: vec![(0, 2.0), (1, 2.0)],
            ..a.clone()
        };
        assert!((a.cosine(&b) - 1.0).abs() < 1e-12);
        let c = Cut {
            coefs: vec![(0, 1.0), (1, -1.0)],
            ..a.clone()
        };
        assert!(a.cosine(&c).abs() < 1e-12);
    }

    #[test]
    fn pool_dedups_and_ages() {
        let (lb, ub) = (vec![0.0; 2], vec![1.0; 2]);
        let mut pool = CutPool::new();
        let mk = || Cut {
            coefs: vec![(0, 1.0), (1, 1.0)],
            lb: f64::NEG_INFINITY,
            ub: 1.0,
            source: CutSource::Clique,
        };
        assert!(pool.offer(mk(), &lb, &ub));
        assert!(!pool.offer(mk(), &lb, &ub), "duplicate rejected");
        // A scaled copy hashes identically after normalization.
        let scaled = Cut {
            coefs: vec![(0, 2.0), (1, 2.0)],
            ub: 2.0,
            ..mk()
        };
        assert!(!pool.offer(scaled, &lb, &ub), "rescaled duplicate rejected");
        assert_eq!(pool.generated, 3);
        assert_eq!(pool.pending_len(), 1);

        // Not violated at an integral point: the entry ages out.
        let cfg = CutConfig {
            max_age: 1,
            ..CutConfig::default()
        };
        assert!(pool.select(&[0.0, 0.0], &cfg).is_empty());
        assert!(pool.select(&[0.0, 0.0], &cfg).is_empty());
        assert_eq!(pool.pending_len(), 0, "aged out after max_age rounds");
    }

    #[test]
    fn pool_selects_violated_and_filters_parallel() {
        let (lb, ub) = (vec![0.0; 2], vec![1.0; 2]);
        let mut pool = CutPool::new();
        pool.offer(
            Cut {
                coefs: vec![(0, 1.0), (1, 1.0)],
                lb: f64::NEG_INFINITY,
                ub: 1.0,
                source: CutSource::Clique,
            },
            &lb,
            &ub,
        );
        // Near-parallel twin (same direction, marginally different): must be
        // filtered by the parallelism check in the same round.
        pool.offer(
            Cut {
                coefs: vec![(0, 1.0), (1, 1.0 + 1e-6)],
                lb: f64::NEG_INFINITY,
                ub: 1.0,
                source: CutSource::Cover,
            },
            &lb,
            &ub,
        );
        let cfg = CutConfig::default();
        let sel = pool.select(&[0.9, 0.9], &cfg);
        assert_eq!(sel.len(), 1, "parallel twin filtered");
        assert_eq!(pool.applied_len(), 1);
    }

    #[test]
    fn context_validates_gub_hints() {
        let (mut p, v) = binary_problem();
        let good = p.add_row(Row::new().coef(v[0], 1.0).coef(v[1], 1.0).eq(1.0));
        // Wrong shape: rhs is 2, not 1 — the hint must be ignored, and the
        // row implies no conflict either.
        let bad = p.add_row(Row::new().coef(v[2], 1.0).coef(v[3], 1.0).le(2.0));
        p.mark_gub(good);
        p.mark_gub(bad);
        let ctx = CutContext::from_problem(&p);
        assert_eq!(ctx.gub_groups.len(), 1);
        assert!(ctx.conflicting(v[0].index(), v[1].index()));
        assert!(!ctx.conflicting(v[2].index(), v[3].index()));
    }

    #[test]
    fn context_detects_pairwise_conflicts() {
        let (mut p, v) = binary_problem();
        // 3x0 + 2x1 <= 4: (1,1) infeasible -> conflict edge.
        p.add_row(Row::new().coef(v[0], 3.0).coef(v[1], 2.0).le(4.0));
        // x2 + x3 <= 2: no conflict.
        p.add_row(Row::new().coef(v[2], 1.0).coef(v[3], 1.0).le(2.0));
        let ctx = CutContext::from_problem(&p);
        assert!(ctx.conflicting(v[0].index(), v[1].index()));
        assert!(!ctx.conflicting(v[2].index(), v[3].index()));
        assert!(ctx.has_structure());
    }
}
