//! Lifted knapsack cover cuts.
//!
//! For an all-binary row `Σ a_j x_j <= b` (negative coefficients are
//! complemented away first), a *cover* is a set `C` with `Σ_{C} a_j > b`;
//! not all of `C` can be 1, so `Σ_{C} x_j <= |C| - 1` is valid. The greedy
//! heuristic picks the cover minimizing `Σ_{C} (1 - x̄_j)`, the cut's slack
//! at the fractional point, and the cut is extended ("lifted") with every
//! variable at least as heavy as the heaviest cover member — those can
//! join the left-hand side at no cost to validity, strengthening the cut.
//! Row lower bounds are handled by separating the negated row.
//!
//! Cover cuts depend only on the original rows and binary bounds, so they
//! are valid everywhere in the branch-and-bound tree.

use super::{Cut, CutContext, CutSource, SepInput, Separator, MIN_VIOLATION};

const EPS: f64 = 1e-9;

/// Knapsack cover separator.
pub struct CoverSeparator;

impl Separator for CoverSeparator {
    fn name(&self) -> &'static str {
        "cover"
    }

    fn separate(&self, inp: &SepInput<'_>, ctx: &CutContext, out: &mut Vec<Cut>) {
        separate_cover(ctx, inp.x, inp.max_cuts, out);
    }
}

pub(crate) fn separate_cover(
    ctx: &CutContext,
    x: &[f64],
    max_cuts: usize,
    out: &mut Vec<Cut>,
) {
    let mut emitted = 0;
    let mut neg: Vec<(usize, f64)> = Vec::new();
    for (coefs, lo, hi) in &ctx.knapsack_rows {
        if emitted >= max_cuts {
            break;
        }
        if hi.is_finite() && try_cover(coefs, *hi, x, out) {
            emitted += 1;
        }
        if emitted >= max_cuts {
            break;
        }
        if lo.is_finite() {
            // Σ a x >= lo  <=>  Σ (-a) x <= -lo
            neg.clear();
            neg.extend(coefs.iter().map(|&(j, c)| (j, -c)));
            if try_cover(&neg, -lo, x, out) {
                emitted += 1;
            }
        }
    }
}

/// Separates one knapsack `Σ a_j x_j <= b` over binaries; returns whether a
/// violated (extended) cover cut was emitted.
fn try_cover(items: &[(usize, f64)], b: f64, x: &[f64], out: &mut Vec<Cut>) -> bool {
    // Complement negative coefficients: y_j = 1 - x_j turns `a_j x_j` with
    // a_j < 0 into `|a_j| y_j` at capacity `b + |a_j|`.
    let mut cap = b;
    // (var, weight, complemented, ybar)
    let mut work: Vec<(usize, f64, bool, f64)> = Vec::with_capacity(items.len());
    for &(j, c) in items {
        if c > 0.0 {
            work.push((j, c, false, x[j]));
        } else if c < 0.0 {
            cap -= c;
            work.push((j, -c, true, 1.0 - x[j]));
        }
    }
    if cap < -EPS || work.len() < 2 {
        return false;
    }
    let total: f64 = work.iter().map(|w| w.1).sum();
    if total <= cap + EPS {
        return false; // no cover exists
    }
    // Greedy: cheapest slack contribution per unit of weight first.
    work.sort_by(|p, q| {
        let kp = (1.0 - p.3) / p.1;
        let kq = (1.0 - q.3) / q.1;
        kp.partial_cmp(&kq).unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut weight = 0.0;
    let mut cover_len = 0;
    for (i, w) in work.iter().enumerate() {
        weight += w.1;
        if weight > cap + EPS {
            cover_len = i + 1;
            break;
        }
    }
    if cover_len == 0 {
        return false;
    }
    let slack: f64 = work[..cover_len].iter().map(|w| 1.0 - w.3).sum();
    if slack >= 1.0 - MIN_VIOLATION {
        return false; // cover inequality not violated at x̄
    }
    // Extension: anything at least as heavy as the heaviest cover member
    // can join the left-hand side without affecting validity.
    let amax = work[..cover_len].iter().map(|w| w.1).fold(0.0, f64::max);
    let mut members: Vec<(usize, bool)> =
        work[..cover_len].iter().map(|w| (w.0, w.2)).collect();
    members.extend(
        work[cover_len..]
            .iter()
            .filter(|w| w.1 >= amax - EPS)
            .map(|w| (w.0, w.2)),
    );
    // Un-complement: y_j = 1 - x_j contributes -x_j and lowers the rhs by 1.
    let mut rhs = (cover_len - 1) as f64;
    let mut coefs: Vec<(usize, f64)> = Vec::with_capacity(members.len());
    for (j, complemented) in members {
        if complemented {
            coefs.push((j, -1.0));
            rhs -= 1.0;
        } else {
            coefs.push((j, 1.0));
        }
    }
    coefs.sort_unstable_by_key(|&(j, _)| j);
    out.push(Cut {
        coefs,
        lb: f64::NEG_INFINITY,
        ub: rhs,
        source: CutSource::Cover,
    });
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Problem, Row, Sense, Var};

    fn ctx_for(rows: &[(&[f64], f64, f64)], nvars: usize) -> CutContext {
        let mut p = Problem::new(Sense::Maximize);
        let vars: Vec<_> = (0..nvars).map(|_| p.add_var(Var::binary().obj(1.0))).collect();
        for (coefs, lo, hi) in rows {
            let mut r = Row::new().range(*lo, *hi);
            for (i, &c) in coefs.iter().enumerate() {
                if c != 0.0 {
                    r = r.coef(vars[i], c);
                }
            }
            p.add_row(r);
        }
        CutContext::from_problem(&p)
    }

    #[test]
    fn finds_violated_extended_cover() {
        // 3x0 + 3x1 + 3x2 <= 5: any two form a cover; extension pulls in
        // the third. Valid: at most one can be 1.
        let ctx = ctx_for(&[(&[3.0, 3.0, 3.0], f64::NEG_INFINITY, 5.0)], 3);
        let x = [0.8, 0.8, 0.06];
        let mut out = Vec::new();
        separate_cover(&ctx, &x, 10, &mut out);
        assert_eq!(out.len(), 1);
        let c = &out[0];
        assert_eq!(c.coefs, vec![(0, 1.0), (1, 1.0), (2, 1.0)]);
        assert_eq!(c.ub, 1.0);
        assert!(c.violation(&x) > 0.5, "violation {}", c.violation(&x));
        // Valid at every integer-feasible point of the knapsack.
        for p in [[1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0], [0.0, 0.0, 0.0]] {
            assert_eq!(c.violation(&p), 0.0);
        }
    }

    #[test]
    fn complements_negative_coefficients() {
        // 2x0 - 3x1 <= 1: (1, 0) is infeasible, so x0 <= x1 is valid; the
        // complemented cover finds exactly that.
        let ctx = ctx_for(&[(&[2.0, -3.0], f64::NEG_INFINITY, 1.0)], 2);
        let x = [0.9, 0.2];
        let mut out = Vec::new();
        separate_cover(&ctx, &x, 10, &mut out);
        assert_eq!(out.len(), 1);
        let c = &out[0];
        assert_eq!(c.coefs, vec![(0, 1.0), (1, -1.0)]);
        assert_eq!(c.ub, 0.0);
        assert!(c.violation(&x) > 0.5);
        for p in [[0.0, 0.0], [0.0, 1.0], [1.0, 1.0]] {
            assert_eq!(c.violation(&p), 0.0);
        }
    }

    #[test]
    fn separates_row_lower_bounds() {
        // 3x0 + 3x1 + 3x2 >= 4 is the negated knapsack -3x0 -3x1 -3x2 <= -4:
        // complementing gives 3y0 + 3y1 + 3y2 <= 5, i.e. at most one y can
        // be 1: at least two x must be 1.
        let ctx = ctx_for(&[(&[3.0, 3.0, 3.0], 4.0, f64::INFINITY)], 3);
        let x = [0.2, 0.2, 0.94];
        let mut out = Vec::new();
        separate_cover(&ctx, &x, 10, &mut out);
        assert_eq!(out.len(), 1);
        let c = &out[0];
        assert!(c.violation(&x) > 0.0);
        // x0 + x1 + x2 >= 2 in <= form.
        for p in [[1.0, 1.0, 0.0], [1.0, 1.0, 1.0], [0.0, 1.0, 1.0]] {
            assert_eq!(c.violation(&p), 0.0, "valid at {:?}", p);
        }
        assert!(c.violation(&[1.0, 0.0, 0.0]) > 0.0, "cuts off infeasible point");
    }

    #[test]
    fn no_cut_when_no_cover_or_not_violated() {
        let ctx = ctx_for(&[(&[1.0, 1.0, 1.0], f64::NEG_INFINITY, 5.0)], 3);
        let mut out = Vec::new();
        separate_cover(&ctx, &[1.0, 1.0, 1.0], 10, &mut out);
        assert!(out.is_empty(), "total weight fits: no cover exists");
        // A cover exists but the point is integral: nothing violated.
        let ctx2 = ctx_for(&[(&[3.0, 3.0, 3.0], f64::NEG_INFINITY, 5.0)], 3);
        separate_cover(&ctx2, &[1.0, 0.0, 0.0], 10, &mut out);
        assert!(out.is_empty());
    }
}
