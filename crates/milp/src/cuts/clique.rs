//! Clique cuts from the binary conflict graph.
//!
//! The conflict graph has an edge `{u, v}` whenever `x_u` and `x_v` cannot
//! both be 1 — seeded from the encoder's one-candidate-per-route GUB
//! annotations ([`crate::Problem::mark_gub`]) and from structurally
//! detected two-variable conflicts. For any clique `K` of that graph,
//! `Σ_{K} x_j <= 1` is valid; the cut is new information exactly when `K`
//! spans *multiple* source rows (a clique inside a single GUB row restates
//! that row and is never violated, so it filters itself out via the pool's
//! violation threshold).
//!
//! Clique cuts depend only on original rows, so they are valid at every
//! branch-and-bound node.

use super::{Cut, CutContext, CutSource, SepInput, Separator, MIN_VIOLATION};

/// Binary variables below this value cannot contribute to a violated
/// clique in a useful way and are not considered.
const X_MIN: f64 = 0.05;

/// Cap on greedy seeds, to bound the quadratic growth loop.
const MAX_CAND: usize = 512;

/// Conflict-graph clique separator.
pub struct CliqueSeparator;

impl Separator for CliqueSeparator {
    fn name(&self) -> &'static str {
        "clique"
    }

    fn separate(&self, inp: &SepInput<'_>, ctx: &CutContext, out: &mut Vec<Cut>) {
        separate_clique(ctx, inp.x, inp.max_cuts, out);
    }
}

pub(crate) fn separate_clique(
    ctx: &CutContext,
    x: &[f64],
    max_cuts: usize,
    out: &mut Vec<Cut>,
) {
    let mut cand: Vec<usize> = (0..ctx.n)
        .filter(|&j| ctx.is_binary[j] && x[j] > X_MIN)
        .collect();
    if cand.len() < 2 {
        return;
    }
    cand.sort_by(|&a, &b| x[b].partial_cmp(&x[a]).unwrap_or(std::cmp::Ordering::Equal));
    cand.truncate(MAX_CAND);
    let mut used = vec![false; ctx.n];
    let mut emitted = 0;
    for s in 0..cand.len() {
        if emitted >= max_cuts {
            break;
        }
        let seed = cand[s];
        if used[seed] {
            continue;
        }
        // Greedily grow a clique around the seed, preferring high x̄.
        let mut clique = vec![seed];
        let mut sum = x[seed];
        for &v in &cand {
            if clique.iter().all(|&u| ctx.conflicting(u, v)) {
                clique.push(v);
                sum += x[v];
            }
        }
        if clique.len() < 2 || sum <= 1.0 + MIN_VIOLATION {
            continue;
        }
        for &u in &clique {
            used[u] = true;
        }
        clique.sort_unstable();
        out.push(Cut {
            coefs: clique.iter().map(|&j| (j, 1.0)).collect(),
            lb: f64::NEG_INFINITY,
            ub: 1.0,
            source: CutSource::Clique,
        });
        emitted += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Problem, Row, Sense, Var};

    #[test]
    fn clique_spanning_two_gub_rows() {
        // GUBs {0,1} and {2,3}; a structural conflict links 1 and 2. The
        // clique {1,2} is exactly the cross-row information the GUB rows
        // alone do not carry.
        let mut p = Problem::new(Sense::Maximize);
        let v: Vec<_> = (0..4).map(|_| p.add_var(Var::binary().obj(1.0))).collect();
        let g1 = p.add_row(Row::new().coef(v[0], 1.0).coef(v[1], 1.0).eq(1.0));
        let g2 = p.add_row(Row::new().coef(v[2], 1.0).coef(v[3], 1.0).eq(1.0));
        p.mark_gub(g1);
        p.mark_gub(g2);
        p.add_row(Row::new().coef(v[1], 1.0).coef(v[2], 1.0).le(1.0));
        let ctx = CutContext::from_problem(&p);
        let x = [0.0, 0.9, 0.9, 0.0];
        let mut out = Vec::new();
        separate_clique(&ctx, &x, 10, &mut out);
        assert_eq!(out.len(), 1);
        let c = &out[0];
        assert_eq!(c.coefs, vec![(1, 1.0), (2, 1.0)]);
        assert_eq!(c.ub, 1.0);
        assert!((c.violation(&x) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn no_cut_without_violation() {
        let mut p = Problem::new(Sense::Maximize);
        let v: Vec<_> = (0..2).map(|_| p.add_var(Var::binary().obj(1.0))).collect();
        let g = p.add_row(Row::new().coef(v[0], 1.0).coef(v[1], 1.0).eq(1.0));
        p.mark_gub(g);
        let ctx = CutContext::from_problem(&p);
        // Sum exactly 1: the GUB row itself, not violated.
        let mut out = Vec::new();
        separate_clique(&ctx, &[0.5, 0.5], 10, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn triangle_from_pairwise_conflicts() {
        // Pairwise conflicts among {0,1,2} assemble into one triangle cut.
        let mut p = Problem::new(Sense::Maximize);
        let v: Vec<_> = (0..3).map(|_| p.add_var(Var::binary().obj(1.0))).collect();
        for (a, b) in [(0, 1), (0, 2), (1, 2)] {
            p.add_row(Row::new().coef(v[a], 1.0).coef(v[b], 1.0).le(1.0));
        }
        let ctx = CutContext::from_problem(&p);
        let x = [0.5, 0.5, 0.5];
        let mut out = Vec::new();
        separate_clique(&ctx, &x, 10, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].coefs.len(), 3, "full triangle, not just one edge");
        assert!((out[0].violation(&x) - 0.5).abs() < 1e-12);
    }
}
