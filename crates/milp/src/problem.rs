//! Problem definition: variables, ranged linear rows, and an objective.
//!
//! A [`Problem`] is the user-facing description of a mixed-integer linear
//! program in the general *ranged* form
//!
//! ```text
//!   minimize (or maximize)  c^T x + c0
//!   subject to              L_r <= a_r^T x <= U_r     for every row r
//!                           l_j <= x_j <= u_j         for every variable j
//!                           x_j integral              for j in I
//! ```
//!
//! Equalities are rows with `L_r == U_r`; one-sided rows use infinite bounds.

use crate::sparse::{CscMatrix, TripletBuilder};
use std::fmt;

/// Optimization direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Sense {
    /// Minimize the objective (default).
    #[default]
    Minimize,
    /// Maximize the objective.
    Maximize,
}

/// The domain of a decision variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum VarType {
    /// Continuous (real-valued).
    #[default]
    Continuous,
    /// General integer.
    Integer,
    /// Binary; bounds are clipped into `[0, 1]`.
    Binary,
}

/// Identifier of a variable within a [`Problem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub(crate) usize);

impl VarId {
    /// Index of the variable in column order.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// Identifier of a row (constraint) within a [`Problem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RowId(pub(crate) usize);

impl RowId {
    /// Index of the row.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for RowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

#[derive(Debug, Clone)]
pub(crate) struct VarData {
    pub lower: f64,
    pub upper: f64,
    pub obj: f64,
    pub vtype: VarType,
    pub name: Option<String>,
}

#[derive(Debug, Clone)]
pub(crate) struct RowData {
    pub coefs: Vec<(VarId, f64)>,
    pub lower: f64,
    pub upper: f64,
    pub name: Option<String>,
}

/// Builder-style description of one variable; see [`Problem::add_var`].
///
/// # Examples
///
/// ```
/// use milp::{Problem, Sense, Var};
///
/// let mut p = Problem::new(Sense::Minimize);
/// let x = p.add_var(Var::cont().bounds(0.0, 10.0).obj(1.0).name("x"));
/// let b = p.add_var(Var::binary().obj(5.0));
/// assert_ne!(x, b);
/// ```
#[derive(Debug, Clone)]
pub struct Var {
    lower: f64,
    upper: f64,
    obj: f64,
    vtype: VarType,
    name: Option<String>,
}

impl Var {
    /// A continuous variable, default bounds `[0, +inf)`, zero objective.
    pub fn cont() -> Self {
        Var {
            lower: 0.0,
            upper: f64::INFINITY,
            obj: 0.0,
            vtype: VarType::Continuous,
            name: None,
        }
    }

    /// A free continuous variable with bounds `(-inf, +inf)`.
    pub fn free() -> Self {
        Var::cont().bounds(f64::NEG_INFINITY, f64::INFINITY)
    }

    /// A binary variable with bounds `[0, 1]`.
    pub fn binary() -> Self {
        Var {
            lower: 0.0,
            upper: 1.0,
            obj: 0.0,
            vtype: VarType::Binary,
            name: None,
        }
    }

    /// A general integer variable, default bounds `[0, +inf)`.
    pub fn integer() -> Self {
        Var {
            vtype: VarType::Integer,
            ..Var::cont()
        }
    }

    /// Sets lower and upper bounds.
    ///
    /// # Panics
    ///
    /// Panics if `lower > upper` or either bound is NaN.
    pub fn bounds(mut self, lower: f64, upper: f64) -> Self {
        assert!(!lower.is_nan() && !upper.is_nan(), "bounds must not be NaN");
        assert!(lower <= upper, "lower bound {} > upper bound {}", lower, upper);
        self.lower = lower;
        self.upper = upper;
        self
    }

    /// Fixes the variable to a single value.
    pub fn fixed(self, value: f64) -> Self {
        self.bounds(value, value)
    }

    /// Sets the objective coefficient.
    pub fn obj(mut self, c: f64) -> Self {
        assert!(c.is_finite(), "objective coefficient must be finite");
        self.obj = c;
        self
    }

    /// Attaches a diagnostic name.
    pub fn name(mut self, n: impl Into<String>) -> Self {
        self.name = Some(n.into());
        self
    }
}

/// Builder-style description of one ranged row; see [`Problem::add_row`].
///
/// # Examples
///
/// ```
/// use milp::{Problem, Sense, Var, Row};
///
/// let mut p = Problem::new(Sense::Minimize);
/// let x = p.add_var(Var::cont().obj(1.0));
/// let y = p.add_var(Var::cont().obj(2.0));
/// // x + 2y >= 3
/// p.add_row(Row::new().coef(x, 1.0).coef(y, 2.0).ge(3.0));
/// // x - y == 1
/// p.add_row(Row::new().coef(x, 1.0).coef(y, -1.0).eq(1.0));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Row {
    coefs: Vec<(VarId, f64)>,
    lower: f64,
    upper: f64,
    name: Option<String>,
}

impl Row {
    /// An empty row with free range `(-inf, +inf)`.
    pub fn new() -> Self {
        Row {
            coefs: Vec::new(),
            lower: f64::NEG_INFINITY,
            upper: f64::INFINITY,
            name: None,
        }
    }

    /// Adds (accumulates) a coefficient for `var`.
    pub fn coef(mut self, var: VarId, c: f64) -> Self {
        assert!(c.is_finite(), "row coefficient must be finite");
        self.coefs.push((var, c));
        self
    }

    /// Adds coefficients from an iterator.
    pub fn coefs<I: IntoIterator<Item = (VarId, f64)>>(mut self, iter: I) -> Self {
        for (v, c) in iter {
            self = self.coef(v, c);
        }
        self
    }

    /// Constrains the row to `a^T x >= rhs`.
    pub fn ge(mut self, rhs: f64) -> Self {
        self.lower = rhs;
        self
    }

    /// Constrains the row to `a^T x <= rhs`.
    pub fn le(mut self, rhs: f64) -> Self {
        self.upper = rhs;
        self
    }

    /// Constrains the row to `a^T x == rhs`.
    pub fn eq(mut self, rhs: f64) -> Self {
        self.lower = rhs;
        self.upper = rhs;
        self
    }

    /// Constrains the row to `lo <= a^T x <= hi`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range(mut self, lo: f64, hi: f64) -> Self {
        assert!(lo <= hi, "row range {} > {}", lo, hi);
        self.lower = lo;
        self.upper = hi;
        self
    }

    /// Attaches a diagnostic name.
    pub fn name(mut self, n: impl Into<String>) -> Self {
        self.name = Some(n.into());
        self
    }
}

/// A mixed-integer linear program.
///
/// See the [module documentation](self) for the mathematical form.
#[derive(Debug, Clone, Default)]
pub struct Problem {
    sense: Sense,
    vars: Vec<VarData>,
    rows: Vec<RowData>,
    obj_offset: f64,
    /// Rows annotated as generalized-upper-bound (GUB) disjunctions — e.g.
    /// the encoder's one-candidate-per-route rows. Structural *hints* for
    /// the clique cut separator, which re-validates the row shape before
    /// trusting them; never affects feasibility or the optimum.
    gub_rows: Vec<RowId>,
}

// Parallel branch and bound shares the presolved `Problem` across worker
// threads (heuristics read it concurrently).
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Problem>();
};

impl Problem {
    /// Creates an empty problem with the given optimization sense.
    pub fn new(sense: Sense) -> Self {
        Problem {
            sense,
            vars: Vec::new(),
            rows: Vec::new(),
            obj_offset: 0.0,
            gub_rows: Vec::new(),
        }
    }

    /// The optimization sense.
    pub fn sense(&self) -> Sense {
        self.sense
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Number of integer (including binary) variables.
    pub fn num_integers(&self) -> usize {
        self.vars
            .iter()
            .filter(|v| v.vtype != VarType::Continuous)
            .count()
    }

    /// Total number of structural nonzero coefficients across all rows.
    pub fn num_nonzeros(&self) -> usize {
        self.rows.iter().map(|r| r.coefs.len()).sum()
    }

    /// Constant added to the objective value.
    pub fn obj_offset(&self) -> f64 {
        self.obj_offset
    }

    /// Adds `delta` to the objective constant.
    pub fn shift_objective(&mut self, delta: f64) {
        self.obj_offset += delta;
    }

    /// Adds a variable, returning its id.
    pub fn add_var(&mut self, v: Var) -> VarId {
        let (mut lo, mut hi) = (v.lower, v.upper);
        if v.vtype == VarType::Binary {
            lo = lo.max(0.0);
            hi = hi.min(1.0);
        }
        self.vars.push(VarData {
            lower: lo,
            upper: hi,
            obj: v.obj,
            vtype: v.vtype,
            name: v.name,
        });
        VarId(self.vars.len() - 1)
    }

    /// Adds a row, returning its id.
    ///
    /// # Panics
    ///
    /// Panics if the row references a variable not in this problem.
    pub fn add_row(&mut self, r: Row) -> RowId {
        for &(v, _) in &r.coefs {
            assert!(v.0 < self.vars.len(), "row references unknown variable {}", v);
        }
        self.rows.push(RowData {
            coefs: r.coefs,
            lower: r.lower,
            upper: r.upper,
            name: r.name,
        });
        RowId(self.rows.len() - 1)
    }

    /// Adds (accumulates) a coefficient for `var` on the existing row `r`.
    ///
    /// This is the column-append primitive: pricing enters a newly created
    /// variable into rows that were built before it existed.
    ///
    /// # Panics
    ///
    /// Panics if `r` or `var` is not part of this problem, or `c` is not
    /// finite.
    pub fn add_row_coef(&mut self, r: RowId, var: VarId, c: f64) {
        assert!(c.is_finite(), "row coefficient must be finite");
        assert!(r.0 < self.rows.len(), "coefficient references unknown row {}", r);
        assert!(var.0 < self.vars.len(), "row references unknown variable {}", var);
        self.rows[r.0].coefs.push((var, c));
    }

    /// Variable bounds `(lower, upper)`.
    pub fn var_bounds(&self, v: VarId) -> (f64, f64) {
        (self.vars[v.0].lower, self.vars[v.0].upper)
    }

    /// Overwrites the bounds of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `lower > upper`.
    pub fn set_var_bounds(&mut self, v: VarId, lower: f64, upper: f64) {
        assert!(lower <= upper, "lower bound {} > upper bound {}", lower, upper);
        self.vars[v.0].lower = lower;
        self.vars[v.0].upper = upper;
    }

    /// The variable's domain type.
    pub fn var_type(&self, v: VarId) -> VarType {
        self.vars[v.0].vtype
    }

    /// The variable's objective coefficient.
    pub fn var_obj(&self, v: VarId) -> f64 {
        self.vars[v.0].obj
    }

    /// Sets the variable's objective coefficient.
    pub fn set_var_obj(&mut self, v: VarId, c: f64) {
        assert!(c.is_finite());
        self.vars[v.0].obj = c;
    }

    /// The variable's name, if set.
    pub fn var_name(&self, v: VarId) -> Option<&str> {
        self.vars[v.0].name.as_deref()
    }

    /// Row range `(lower, upper)`.
    pub fn row_bounds(&self, r: RowId) -> (f64, f64) {
        (self.rows[r.0].lower, self.rows[r.0].upper)
    }

    /// Row coefficients as pushed (duplicates possible; merged on assembly).
    pub fn row_coefs(&self, r: RowId) -> &[(VarId, f64)] {
        &self.rows[r.0].coefs
    }

    /// The row's name, if set.
    pub fn row_name(&self, r: RowId) -> Option<&str> {
        self.rows[r.0].name.as_deref()
    }

    /// Iterates over all variable ids.
    pub fn var_ids(&self) -> impl Iterator<Item = VarId> {
        (0..self.vars.len()).map(VarId)
    }

    /// The id of the variable at `index` (column order).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn var_id(&self, index: usize) -> VarId {
        assert!(index < self.vars.len(), "variable index out of range");
        VarId(index)
    }

    /// Iterates over all row ids.
    pub fn row_ids(&self) -> impl Iterator<Item = RowId> {
        (0..self.rows.len()).map(RowId)
    }

    /// Annotates row `r` as a GUB/set-partitioning disjunction (e.g. "pick
    /// exactly one candidate path"). The annotation is advisory: the clique
    /// cut separator re-validates the row shape (all-binary, unit
    /// coefficients, right-hand side 1) before using it, so a stale or
    /// wrong hint can never produce an invalid cut.
    ///
    /// # Panics
    ///
    /// Panics if `r` is not a row of this problem.
    pub fn mark_gub(&mut self, r: RowId) {
        assert!(r.0 < self.rows.len(), "GUB annotation references unknown row {}", r);
        if !self.gub_rows.contains(&r) {
            self.gub_rows.push(r);
        }
    }

    /// Rows annotated via [`Problem::mark_gub`], in annotation order.
    pub fn gub_rows(&self) -> &[RowId] {
        &self.gub_rows
    }

    /// Assembles the constraint matrix in CSC form (rows x vars).
    pub fn matrix(&self) -> CscMatrix {
        let mut b = TripletBuilder::new(self.rows.len(), self.vars.len());
        for (ri, row) in self.rows.iter().enumerate() {
            for &(v, c) in &row.coefs {
                b.push(ri, v.0, c);
            }
        }
        b.build()
    }

    /// Objective coefficients as a dense vector (in the problem's sense).
    pub fn objective(&self) -> Vec<f64> {
        self.vars.iter().map(|v| v.obj).collect()
    }

    /// Evaluates the objective (including offset) at a point.
    pub fn eval_objective(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.vars.len());
        self.obj_offset
            + self
                .vars
                .iter()
                .zip(x)
                .map(|(v, xi)| v.obj * xi)
                .sum::<f64>()
    }

    /// Evaluates row activity `a_r^T x`.
    pub fn eval_row(&self, r: RowId, x: &[f64]) -> f64 {
        self.rows[r.0].coefs.iter().map(|&(v, c)| c * x[v.0]).sum()
    }

    /// Checks whether `x` satisfies all rows, bounds, and integrality within
    /// `tol`. Returns the first violation message, or `None` if feasible.
    pub fn check_feasible(&self, x: &[f64], tol: f64) -> Option<String> {
        if x.len() != self.vars.len() {
            return Some(format!(
                "solution has {} entries, problem has {} variables",
                x.len(),
                self.vars.len()
            ));
        }
        for (j, v) in self.vars.iter().enumerate() {
            if x[j] < v.lower - tol || x[j] > v.upper + tol {
                return Some(format!(
                    "variable {} = {} violates bounds [{}, {}]",
                    j, x[j], v.lower, v.upper
                ));
            }
            if v.vtype != VarType::Continuous && (x[j] - x[j].round()).abs() > tol {
                return Some(format!("variable {} = {} is not integral", j, x[j]));
            }
        }
        for r in self.row_ids() {
            let act = self.eval_row(r, x);
            let (lo, hi) = self.row_bounds(r);
            if act < lo - tol || act > hi + tol {
                return Some(format!(
                    "row {} activity {} violates range [{}, {}]",
                    r.0, act, lo, hi
                ));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_small_problem() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var(Var::cont().bounds(0.0, 4.0).obj(1.0).name("x"));
        let y = p.add_var(Var::binary().obj(-2.0));
        let r = p.add_row(Row::new().coef(x, 1.0).coef(y, 1.0).le(3.0).name("cap"));
        assert_eq!(p.num_vars(), 2);
        assert_eq!(p.num_rows(), 1);
        assert_eq!(p.num_integers(), 1);
        assert_eq!(p.var_bounds(x), (0.0, 4.0));
        assert_eq!(p.var_bounds(y), (0.0, 1.0));
        assert_eq!(p.row_bounds(r), (f64::NEG_INFINITY, 3.0));
        assert_eq!(p.var_name(x), Some("x"));
        assert_eq!(p.row_name(r), Some("cap"));
    }

    #[test]
    fn binary_bounds_clipped() {
        let mut p = Problem::new(Sense::Minimize);
        let b = p.add_var(Var::binary().bounds(-3.0, 9.0));
        assert_eq!(p.var_bounds(b), (0.0, 1.0));
    }

    #[test]
    fn eval_and_check() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var(Var::cont().bounds(0.0, 10.0).obj(3.0));
        let y = p.add_var(Var::integer().bounds(0.0, 5.0).obj(1.0));
        p.add_row(Row::new().coef(x, 2.0).coef(y, 1.0).range(1.0, 8.0));
        p.shift_objective(10.0);
        let sol = [2.0, 3.0];
        assert_eq!(p.eval_objective(&sol), 10.0 + 6.0 + 3.0);
        assert!(p.check_feasible(&sol, 1e-9).is_none());
        assert!(p.check_feasible(&[2.0, 3.5], 1e-9).is_some()); // fractional int
        assert!(p.check_feasible(&[20.0, 0.0], 1e-9).is_some()); // bound
        assert!(p.check_feasible(&[0.0, 0.0], 1e-9).is_some()); // row lower
    }

    #[test]
    fn gub_annotations_dedup_and_survive_clone() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var(Var::binary());
        let y = p.add_var(Var::binary());
        let r = p.add_row(Row::new().coef(x, 1.0).coef(y, 1.0).eq(1.0));
        p.mark_gub(r);
        p.mark_gub(r); // duplicate annotation is a no-op
        assert_eq!(p.gub_rows(), &[r]);
        let q = p.clone();
        assert_eq!(q.gub_rows(), &[r]);
    }

    #[test]
    fn matrix_assembly_merges_duplicates() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var(Var::cont());
        p.add_row(Row::new().coef(x, 1.0).coef(x, 2.0).eq(3.0));
        let m = p.matrix();
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.col(0).next(), Some((0, 3.0)));
    }

    #[test]
    #[should_panic(expected = "unknown variable")]
    fn foreign_var_rejected() {
        let mut p1 = Problem::new(Sense::Minimize);
        let x = p1.add_var(Var::cont());
        let _ = p1.add_var(Var::cont());
        let mut p2 = Problem::new(Sense::Minimize);
        let _ = x; // id from p1 with index 0 is fine in p2 only if p2 has vars
        let mut p3 = Problem::new(Sense::Minimize);
        let y = p3.add_var(Var::cont());
        let _ = y;
        // p2 has no vars at all; any coef panics
        p2.add_row(Row::new().coef(VarId(0), 1.0).le(1.0));
    }
}
