//! Export of a [`Problem`] to the CPLEX LP text format.
//!
//! Useful for debugging the home-grown solver against external tools: the
//! emitted text can be fed unchanged to CPLEX, Gurobi, HiGHS, or `glpsol`.

use crate::problem::{Problem, RowId, Sense, Var, VarId, VarType};
use std::fmt::Write as _;

/// Renders `problem` in CPLEX LP format.
///
/// Variable and row names from the problem are used when present (sanitized
/// to the LP charset), with `x{i}` / `r{i}` fallbacks.
///
/// # Examples
///
/// ```
/// use milp::{Problem, Sense, Var, Row};
/// use milp::lp_format::to_lp_string;
///
/// let mut p = Problem::new(Sense::Maximize);
/// let x = p.add_var(Var::integer().bounds(0.0, 4.0).obj(3.0).name("x"));
/// p.add_row(Row::new().coef(x, 2.0).le(7.0).name("cap"));
/// let text = to_lp_string(&p);
/// assert!(text.contains("Maximize"));
/// assert!(text.contains("cap:"));
/// ```
pub fn to_lp_string(problem: &Problem) -> String {
    let mut s = String::new();
    match problem.sense() {
        Sense::Minimize => s.push_str("Minimize\n"),
        Sense::Maximize => s.push_str("Maximize\n"),
    }
    s.push_str(" obj:");
    let mut wrote_any = false;
    for v in problem.var_ids() {
        let c = problem.var_obj(v);
        if c != 0.0 {
            let _ = write!(s, " {} {}", sign_coef(c, !wrote_any), var_name(problem, v));
            wrote_any = true;
        }
    }
    if !wrote_any {
        s.push_str(" 0 x0_dummy");
    }
    s.push('\n');

    s.push_str("Subject To\n");
    for r in problem.row_ids() {
        let (lo, hi) = problem.row_bounds(r);
        if !lo.is_finite() && !hi.is_finite() {
            continue;
        }
        // Merge duplicate coefficients for readable output.
        let mut merged: std::collections::BTreeMap<usize, f64> = Default::default();
        for &(v, c) in problem.row_coefs(r) {
            *merged.entry(v.index()).or_insert(0.0) += c;
        }
        let body = {
            let mut b = String::new();
            let mut first = true;
            for (&vi, &c) in &merged {
                if c == 0.0 {
                    continue;
                }
                let _ = write!(
                    b,
                    " {} {}",
                    sign_coef(c, first),
                    var_name(problem, VarId(vi))
                );
                first = false;
            }
            if first {
                b.push_str(" 0 x0_dummy");
            }
            b
        };
        let name = row_name(problem, r);
        if lo.is_finite() && hi.is_finite() && (lo - hi).abs() < 1e-15 {
            let _ = writeln!(s, " {}:{} = {}", name, body, lo);
        } else {
            if lo.is_finite() && hi.is_finite() {
                let _ = writeln!(s, " {}_lo:{} >= {}", name, body, lo);
                let _ = writeln!(s, " {}_hi:{} <= {}", name, body, hi);
            } else if lo.is_finite() {
                let _ = writeln!(s, " {}:{} >= {}", name, body, lo);
            } else {
                let _ = writeln!(s, " {}:{} <= {}", name, body, hi);
            }
        }
    }

    s.push_str("Bounds\n");
    for v in problem.var_ids() {
        let (lo, hi) = problem.var_bounds(v);
        let n = var_name(problem, v);
        match (lo.is_finite(), hi.is_finite()) {
            (true, true) => {
                let _ = writeln!(s, " {} <= {} <= {}", lo, n, hi);
            }
            (true, false) => {
                if lo != 0.0 {
                    let _ = writeln!(s, " {} >= {}", n, lo);
                }
            }
            (false, true) => {
                let _ = writeln!(s, " -inf <= {} <= {}", n, hi);
            }
            (false, false) => {
                let _ = writeln!(s, " {} free", n);
            }
        }
    }

    let generals: Vec<VarId> = problem
        .var_ids()
        .filter(|&v| problem.var_type(v) == VarType::Integer)
        .collect();
    if !generals.is_empty() {
        s.push_str("Generals\n");
        for v in generals {
            let _ = writeln!(s, " {}", var_name(problem, v));
        }
    }
    let binaries: Vec<VarId> = problem
        .var_ids()
        .filter(|&v| problem.var_type(v) == VarType::Binary)
        .collect();
    if !binaries.is_empty() {
        s.push_str("Binaries\n");
        for v in binaries {
            let _ = writeln!(s, " {}", var_name(problem, v));
        }
    }
    s.push_str("End\n");
    s
}

/// Error from [`parse_lp_string`].
#[derive(Debug, Clone, PartialEq)]
pub struct ParseLpError {
    /// 1-based line number.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl std::fmt::Display for ParseLpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lp line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseLpError {}

/// Parses the CPLEX LP subset emitted by [`to_lp_string`] back into a
/// [`Problem`] — used for round-trip tests and for loading instances
/// exported from external tools.
///
/// Supported sections: `Minimize`/`Maximize`, `Subject To`, `Bounds`,
/// `Generals`, `Binaries`, `End`. Each constraint must sit on one line.
///
/// # Errors
///
/// Returns [`ParseLpError`] with the offending line for malformed input.
pub fn parse_lp_string(text: &str) -> Result<Problem, ParseLpError> {
    /// Accumulated row: coefficient list plus `[lb, ub]` range.
    type RawRow = (Vec<(usize, f64)>, f64, f64);
    #[derive(PartialEq, Clone, Copy)]
    enum Section {
        Preamble,
        Objective,
        Rows,
        Bounds,
        Generals,
        Binaries,
    }
    let mut sense = Sense::Minimize;
    let mut section = Section::Preamble;
    // name -> (index, coef accumulation happens later)
    let mut var_ids: std::collections::HashMap<String, usize> = Default::default();
    let mut var_names: Vec<String> = Vec::new();
    let mut obj: Vec<(usize, f64)> = Vec::new();
    let mut rows: Vec<RawRow> = Vec::new();
    let mut bounds: std::collections::HashMap<usize, (f64, f64)> = Default::default();
    let mut generals: Vec<usize> = Vec::new();
    let mut binaries: Vec<usize> = Vec::new();

    let intern = |name: &str, var_ids: &mut std::collections::HashMap<String, usize>,
                      var_names: &mut Vec<String>| -> usize {
        if let Some(&i) = var_ids.get(name) {
            return i;
        }
        let i = var_names.len();
        var_ids.insert(name.to_string(), i);
        var_names.push(name.to_string());
        i
    };

    /// Parses `[+-] [num [*]] name` sequences into terms.
    fn parse_terms(
        tokens: &[&str],
        lineno: usize,
        intern: &mut dyn FnMut(&str) -> usize,
    ) -> Result<Vec<(usize, f64)>, ParseLpError> {
        let mut terms = Vec::new();
        let mut sign = 1.0f64;
        let mut pending: Option<f64> = None;
        for &tok in tokens {
            match tok {
                "+" => sign = 1.0,
                "-" => sign = -1.0,
                "*" => {}
                t => {
                    if let Ok(v) = t.parse::<f64>() {
                        if pending.is_some() {
                            return Err(ParseLpError {
                                line: lineno,
                                message: format!("two consecutive numbers near `{}`", t),
                            });
                        }
                        pending = Some(v);
                    } else {
                        let coef = sign * pending.take().unwrap_or(1.0);
                        terms.push((intern(t), coef));
                        sign = 1.0;
                    }
                }
            }
        }
        if pending.is_some() {
            return Err(ParseLpError {
                line: lineno,
                message: "dangling coefficient without variable".into(),
            });
        }
        Ok(terms)
    }

    for (lineno, raw) in text.lines().enumerate() {
        let lineno = lineno + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('\\') {
            continue;
        }
        let lower = line.to_ascii_lowercase();
        match lower.as_str() {
            "minimize" | "min" => {
                sense = Sense::Minimize;
                section = Section::Objective;
                continue;
            }
            "maximize" | "max" => {
                sense = Sense::Maximize;
                section = Section::Objective;
                continue;
            }
            "subject to" | "st" | "s.t." => {
                section = Section::Rows;
                continue;
            }
            "bounds" => {
                section = Section::Bounds;
                continue;
            }
            "generals" | "general" => {
                section = Section::Generals;
                continue;
            }
            "binaries" | "binary" => {
                section = Section::Binaries;
                continue;
            }
            "end" => break,
            _ => {}
        }
        // strip a leading `name:` label
        let body = match line.split_once(':') {
            Some((_, rest)) => rest,
            None => line,
        };
        // tokenize with operators separated
        let spaced = body
            .replace("<=", " <= ")
            .replace(">=", " >= ")
            .replace('+', " + ")
            .replace('*', " * ");
        // careful with '-' inside numbers like 1e-5: split on whitespace
        // first, then split leading minus signs off identifiers
        let mut tokens: Vec<String> = Vec::new();
        for t in spaced.split_whitespace() {
            if let Some(rest) = t.strip_prefix('-') {
                if rest.parse::<f64>().is_err() && !rest.is_empty() {
                    tokens.push("-".into());
                    tokens.push(rest.to_string());
                    continue;
                }
                if t.parse::<f64>().is_ok() {
                    tokens.push(t.to_string());
                    continue;
                }
                tokens.push("-".into());
                if !rest.is_empty() {
                    tokens.push(rest.to_string());
                }
                continue;
            }
            // remaining tokens (including lone '=', '<', '>') pass through
            tokens.push(t.to_string());
        }
        let toks: Vec<&str> = tokens.iter().map(|s| s.as_str()).collect();
        match section {
            Section::Preamble => {
                return Err(ParseLpError {
                    line: lineno,
                    message: "expected Minimize/Maximize header".into(),
                })
            }
            Section::Objective => {
                let terms = parse_terms(&toks, lineno, &mut |n| {
                    intern(n, &mut var_ids, &mut var_names)
                })?;
                obj.extend(terms);
            }
            Section::Rows => {
                // find the comparison operator
                let op_pos = toks
                    .iter()
                    .position(|t| matches!(*t, "<=" | ">=" | "="))
                    .ok_or(ParseLpError {
                        line: lineno,
                        message: "constraint lacks <=, >= or =".into(),
                    })?;
                let rhs: f64 = toks
                    .get(op_pos + 1)
                    .and_then(|t| t.parse().ok())
                    .ok_or(ParseLpError {
                        line: lineno,
                        message: "constraint lacks numeric right-hand side".into(),
                    })?;
                let terms = parse_terms(&toks[..op_pos], lineno, &mut |n| {
                    intern(n, &mut var_ids, &mut var_names)
                })?;
                let (lo, hi) = match toks[op_pos] {
                    "<=" => (f64::NEG_INFINITY, rhs),
                    ">=" => (rhs, f64::INFINITY),
                    _ => (rhs, rhs),
                };
                rows.push((terms, lo, hi));
            }
            Section::Bounds => {
                // forms: `x free` | `lo <= x <= hi` | `x >= lo` | `x <= hi`
                if toks.len() == 2 && toks[1].eq_ignore_ascii_case("free") {
                    let v = intern(toks[0], &mut var_ids, &mut var_names);
                    bounds.insert(v, (f64::NEG_INFINITY, f64::INFINITY));
                } else if toks.len() == 5 && toks[1] == "<=" && toks[3] == "<=" {
                    let parse_bound = |t: &str| -> f64 {
                        match t.to_ascii_lowercase().as_str() {
                            "-inf" | "-infinity" => f64::NEG_INFINITY,
                            "inf" | "+inf" | "infinity" => f64::INFINITY,
                            other => other.parse().unwrap_or(f64::NAN),
                        }
                    };
                    let lo = parse_bound(toks[0]);
                    let hi = parse_bound(toks[4]);
                    if lo.is_nan() || hi.is_nan() {
                        return Err(ParseLpError {
                            line: lineno,
                            message: "malformed bound values".into(),
                        });
                    }
                    let v = intern(toks[2], &mut var_ids, &mut var_names);
                    bounds.insert(v, (lo, hi));
                } else if toks.len() == 3 && (toks[1] == ">=" || toks[1] == "<=") {
                    let v = intern(toks[0], &mut var_ids, &mut var_names);
                    let b: f64 = toks[2].parse().map_err(|_| ParseLpError {
                        line: lineno,
                        message: "malformed bound value".into(),
                    })?;
                    let entry = bounds.entry(v).or_insert((0.0, f64::INFINITY));
                    if toks[1] == ">=" {
                        entry.0 = b;
                    } else {
                        entry.1 = b;
                    }
                } else {
                    return Err(ParseLpError {
                        line: lineno,
                        message: format!("unrecognized bounds line `{}`", line),
                    });
                }
            }
            Section::Generals => {
                for t in &toks {
                    generals.push(intern(t, &mut var_ids, &mut var_names));
                }
            }
            Section::Binaries => {
                for t in &toks {
                    binaries.push(intern(t, &mut var_ids, &mut var_names));
                }
            }
        }
    }

    // Assemble the problem.
    let mut p = Problem::new(sense);
    let mut ids = Vec::with_capacity(var_names.len());
    let obj_map: std::collections::HashMap<usize, f64> = {
        let mut m = std::collections::HashMap::new();
        for (v, c) in obj {
            *m.entry(v).or_insert(0.0) += c;
        }
        m
    };
    let generals: std::collections::HashSet<usize> = generals.into_iter().collect();
    let binaries: std::collections::HashSet<usize> = binaries.into_iter().collect();
    for (i, name) in var_names.iter().enumerate() {
        let (lo, hi) = bounds.get(&i).copied().unwrap_or((0.0, f64::INFINITY));
        let base = if binaries.contains(&i) {
            Var::binary()
        } else if generals.contains(&i) {
            Var::integer()
        } else {
            Var::cont()
        };
        let builder = if binaries.contains(&i) {
            base // binaries keep their 0/1 box
        } else {
            base.bounds(lo, hi)
        };
        ids.push(p.add_var(
            builder.obj(obj_map.get(&i).copied().unwrap_or(0.0)).name(name.clone()),
        ));
    }
    for (terms, lo, hi) in rows {
        let mut row = crate::problem::Row::new().range(lo.min(hi), hi.max(lo));
        for (v, c) in terms {
            row = row.coef(ids[v], c);
        }
        p.add_row(row);
    }
    Ok(p)
}

fn sign_coef(c: f64, first: bool) -> String {
    if first {
        format!("{}", c)
    } else if c < 0.0 {
        format!("- {}", -c)
    } else {
        format!("+ {}", c)
    }
}

fn sanitize(raw: &str) -> String {
    raw.chars()
        .map(|ch| {
            if ch.is_ascii_alphanumeric() || "_.#$%&/".contains(ch) {
                ch
            } else {
                '_'
            }
        })
        .collect()
}

fn var_name(p: &Problem, v: VarId) -> String {
    match p.var_name(v) {
        Some(n) => sanitize(n),
        None => format!("x{}", v.index()),
    }
}

fn row_name(p: &Problem, r: RowId) -> String {
    match p.row_name(r) {
        Some(n) => sanitize(n),
        None => format!("r{}", r.index()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Row, Var};

    #[test]
    fn renders_sections() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var(Var::cont().bounds(0.0, 5.0).obj(2.0).name("width"));
        let b = p.add_var(Var::binary().obj(-1.0));
        let g = p.add_var(Var::integer().bounds(0.0, 9.0).obj(1.0));
        p.add_row(Row::new().coef(x, 1.0).coef(b, -3.0).ge(1.0).name("lq"));
        p.add_row(Row::new().coef(g, 1.0).coef(b, 1.0).range(0.0, 4.0));
        let s = to_lp_string(&p);
        assert!(s.contains("Minimize"));
        assert!(s.contains("Subject To"));
        assert!(s.contains("lq:"));
        assert!(s.contains("width"));
        assert!(s.contains("Bounds"));
        assert!(s.contains("Generals"));
        assert!(s.contains("Binaries"));
        assert!(s.ends_with("End\n"));
        // range row becomes two inequalities
        assert!(s.contains("r1_lo:"));
        assert!(s.contains("r1_hi:"));
    }

    #[test]
    fn weird_names_sanitized() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var(Var::cont().obj(1.0).name("a b->c"));
        p.add_row(Row::new().coef(x, 1.0).le(1.0).name("my row"));
        let s = to_lp_string(&p);
        assert!(s.contains("a_b__c"));
        assert!(s.contains("my_row:"));
    }

    #[test]
    fn roundtrip_solves_identically() {
        // write -> parse -> both versions must have the same optimum
        let mut p = Problem::new(Sense::Maximize);
        let a = p.add_var(Var::integer().bounds(0.0, 10.0).obj(5.0).name("a"));
        let b = p.add_var(Var::integer().bounds(0.0, 10.0).obj(4.0).name("b"));
        let x = p.add_var(Var::cont().bounds(0.0, 2.5).obj(1.5).name("x"));
        p.add_row(Row::new().coef(a, 6.0).coef(b, 4.0).le(24.0));
        p.add_row(Row::new().coef(a, 1.0).coef(b, 2.0).coef(x, 1.0).le(6.0));
        let text = to_lp_string(&p);
        let q = parse_lp_string(&text).unwrap();
        assert_eq!(q.num_vars(), 3);
        assert_eq!(q.num_rows(), 2);
        let sp = crate::solve(&p);
        let sq = crate::solve(&q);
        assert_eq!(sp.status(), crate::Status::Optimal);
        assert_eq!(sq.status(), crate::Status::Optimal);
        assert!(
            (sp.objective() - sq.objective()).abs() < 1e-6,
            "{} vs {}",
            sp.objective(),
            sq.objective()
        );
    }

    #[test]
    fn roundtrip_with_ranges_binaries_and_free() {
        let mut p = Problem::new(Sense::Minimize);
        let f = p.add_var(Var::free().obj(1.0).name("f"));
        let z = p.add_var(Var::binary().obj(-2.0).name("z"));
        let g = p.add_var(Var::integer().bounds(-3.0, 7.0).obj(0.5).name("g"));
        p.add_row(Row::new().coef(f, 1.0).coef(z, 2.0).range(-1.0, 4.0));
        p.add_row(Row::new().coef(g, 1.0).coef(f, -1.0).ge(0.0));
        p.add_row(Row::new().coef(f, 1.0).ge(-5.0)); // bounds f from below
        let text = to_lp_string(&p);
        let q = parse_lp_string(&text).unwrap();
        let sp = crate::solve(&p);
        let sq = crate::solve(&q);
        assert_eq!(sp.status(), sq.status());
        if sp.status() == crate::Status::Optimal {
            assert!((sp.objective() - sq.objective()).abs() < 1e-6);
        }
    }

    #[test]
    fn parse_handwritten_lp() {
        let text = "\\ comment\nMinimize\n obj: 2 x + 3 y\nSubject To\n c1: x + y >= 4\n c2: x - y <= 2\nBounds\n 0 <= x <= 10\n 0 <= y <= 10\nEnd\n";
        let p = parse_lp_string(text).unwrap();
        assert_eq!(p.num_vars(), 2);
        assert_eq!(p.num_rows(), 2);
        let s = crate::solve(&p);
        assert_eq!(s.status(), crate::Status::Optimal);
        // optimum: x=y=2 (cost 10)? min 2x+3y with x+y>=4, x-y<=2:
        // best puts weight on x: x=3,y=1 -> 9; check
        assert!((s.objective() - 9.0).abs() < 1e-6, "obj {}", s.objective());
    }

    #[test]
    fn parse_errors_report_lines() {
        let bad = "Minimize\n obj: x\nSubject To\n c1: x + y\nEnd\n";
        let err = parse_lp_string(bad).unwrap_err();
        assert_eq!(err.line, 4);
        assert!(err.message.contains("<="));
        let no_header = " x + y <= 1\n";
        assert!(parse_lp_string(no_header).is_err());
    }

    #[test]
    fn equality_rendered_once() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var(Var::cont().obj(1.0));
        p.add_row(Row::new().coef(x, 2.0).eq(4.0));
        let s = to_lp_string(&p);
        assert!(s.contains("= 4"));
        assert!(!s.contains("r0_lo"));
    }
}
