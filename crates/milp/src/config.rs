//! Solver configuration: tolerances, limits, and strategy switches.

use crate::error::{CancelToken, FaultInjection};
use std::time::Duration;

/// Branching variable selection strategy for the branch-and-bound search.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Branching {
    /// Branch on the integer variable whose LP value is closest to 0.5 away
    /// from an integer (classic most-fractional rule).
    MostFractional,
    /// Pseudo-cost branching with most-fractional fallback before costs are
    /// initialized (default).
    #[default]
    PseudoCost,
}

/// LP reoptimization strategy for warm-started node solves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReoptMode {
    /// Dual simplex when the warm basis is dual-feasible (the common case
    /// after a branching bound change), primal otherwise (default).
    #[default]
    Auto,
    /// Always try the dual simplex first on warm-started solves.
    Dual,
    /// Never use the dual simplex; re-solve with primal phase 1 + 2.
    Primal,
}

/// Simplex pricing rule for entering-variable selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PricingRule {
    /// Devex reference-weight pricing (default): approximates steepest-edge
    /// step quality and sharply cuts iteration counts on degenerate routing
    /// LPs. Bland's rule still takes over as the anti-cycling fallback.
    #[default]
    Devex,
    /// Classic Dantzig most-negative-reduced-cost pricing.
    Dantzig,
}

/// Node selection strategy for the branch-and-bound search.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NodeSelection {
    /// Pure best-bound (best-first) search.
    BestBound,
    /// Best-bound with depth-first plunging after each node (default): the
    /// solver dives into one child immediately, which finds incumbents early
    /// while the queue keeps the global bound.
    #[default]
    BestBoundPlunge,
    /// Pure depth-first search.
    DepthFirst,
}

/// Cutting-plane configuration: per-separator toggles, round limits, and
/// the numerical filters of the cut pool.
///
/// Cuts are separated in rounds at the root (and, when [`Self::node_cuts`]
/// is on, at branch-and-bound nodes), appended to the LP, and reoptimized
/// with the dual simplex. Every cut is a valid inequality for the integer
/// hull, so any combination of toggles leaves the optimum unchanged — the
/// knobs only trade separation effort against LP tightness.
///
/// # Examples
///
/// ```
/// use milp::{Config, CutConfig};
/// let cfg = Config::default().with_cuts(CutConfig::off());
/// assert!(!cfg.cuts.enabled);
/// ```
#[derive(Debug, Clone)]
pub struct CutConfig {
    /// Master switch; `false` skips separation entirely.
    pub enabled: bool,
    /// Gomory mixed-integer cuts from the optimal root tableau.
    pub gomory: bool,
    /// Lifted knapsack cover cuts from all-binary rows.
    pub cover: bool,
    /// Clique/GUB cuts from one-candidate-per-route disjunctions and
    /// pairwise binary conflicts.
    pub clique: bool,
    /// Maximum separation rounds at the root.
    pub max_rounds: usize,
    /// Maximum cuts applied per round (most violated first).
    pub max_cuts_per_round: usize,
    /// Minimum efficacy (violation / coefficient 2-norm) for a cut to be
    /// applied.
    pub min_efficacy: f64,
    /// Maximum |cosine| between two cuts applied in the same round; filters
    /// near-parallel rows that would degrade the basis conditioning.
    pub max_parallelism: f64,
    /// Separate (globally valid cover/clique) cuts at branch-and-bound
    /// nodes too, sharing one pool across workers. Off by default: the root
    /// rounds capture most of the benefit at a fraction of the cost.
    pub node_cuts: bool,
    /// Maximum number of cuts held in the pool (pending + applied).
    pub max_pool: usize,
    /// Pending cuts not selected for this many rounds are evicted.
    pub max_age: usize,
}

impl Default for CutConfig {
    fn default() -> Self {
        CutConfig {
            enabled: true,
            gomory: true,
            cover: true,
            clique: true,
            max_rounds: 4,
            max_cuts_per_round: 50,
            min_efficacy: 1e-4,
            max_parallelism: 0.999,
            node_cuts: false,
            max_pool: 2000,
            max_age: 3,
        }
    }
}

impl CutConfig {
    /// A configuration with every separator disabled (cuts-off ablation).
    pub fn off() -> Self {
        CutConfig {
            enabled: false,
            gomory: false,
            cover: false,
            clique: false,
            ..Default::default()
        }
    }
}

/// Column-generation configuration: round limits and the reduced-cost
/// acceptance tolerance of the root pricing loop.
///
/// Pricing is driven by a caller-supplied [`crate::pricing::ColumnSource`]
/// (the solver core has no knowledge of what columns *mean*); these knobs
/// only bound how long the solve-price-reoptimize loop runs. Because every
/// priced column is a variable of the true (unrestricted) formulation,
/// pricing can only improve the restricted optimum — termination with no
/// acceptable column proves LP optimality over the full column set.
///
/// # Examples
///
/// ```
/// use milp::{ColGenConfig, Config};
/// let cfg = Config::default().with_colgen(ColGenConfig::default());
/// assert!(cfg.colgen.enabled);
/// ```
#[derive(Debug, Clone)]
pub struct ColGenConfig {
    /// Master switch; `false` skips pricing even when a column source is
    /// supplied.
    pub enabled: bool,
    /// Maximum solve-price-reoptimize rounds at the root.
    pub max_rounds: usize,
    /// Maximum columns accepted per round (most negative reduced cost
    /// first; the source enforces this).
    pub max_cols_per_round: usize,
    /// A candidate column is accepted when its reduced cost is below
    /// `-rc_tol` (minimization form).
    pub rc_tol: f64,
    /// Stop after this many consecutive rounds where the LP objective
    /// fails to improve by more than `rc_tol` (degenerate stalling guard).
    pub stall_rounds: usize,
}

impl Default for ColGenConfig {
    fn default() -> Self {
        ColGenConfig {
            enabled: true,
            max_rounds: 50,
            max_cols_per_round: 20,
            rc_tol: 1e-6,
            stall_rounds: 5,
        }
    }
}

impl ColGenConfig {
    /// A configuration with pricing disabled (pricing-off ablation).
    pub fn off() -> Self {
        ColGenConfig {
            enabled: false,
            ..Default::default()
        }
    }
}

/// Primal-heuristic configuration: the classic root rounding/diving passes
/// plus the anytime large-neighborhood-search (LNS) + tabu engine that rides
/// shotgun on the branch-and-bound search.
///
/// The LNS engine seeds from the root LP relaxation with RINS-style fixing
/// (integer variables on which the relaxation and the current incumbent
/// agree stay fixed), then repeatedly *destroys* a neighborhood — one
/// route's candidate-path disjunction or one node's device placements,
/// taken from the encoder's GUB annotations — and *repairs* it with a
/// node-budgeted sub-MILP on the warm-started dual-simplex core. Every
/// improvement is feasibility-checked against the full row set before it is
/// published through the shared incumbent, so the engine can only ever help:
/// workers prune harder, the final optimum is unchanged.
///
/// The engine is deterministic given [`Config::seed`]: it never *reads* the
/// shared incumbent, so its improvement sequence does not depend on thread
/// scheduling — only how far it gets before the exact search finishes does.
///
/// # Examples
///
/// ```
/// use milp::{Config, HeurConfig};
/// let cfg = Config::default().with_heur(HeurConfig::off());
/// assert!(!cfg.heuristics.enabled && !cfg.heuristics.lns);
/// ```
#[derive(Debug, Clone)]
pub struct HeurConfig {
    /// Master switch for the rounding/diving passes at the root and the
    /// in-tree dives.
    pub enabled: bool,
    /// Run the LNS + tabu primal engine alongside the tree search.
    pub lns: bool,
    /// Node budget for each sub-MILP repair solve.
    pub lns_node_budget: usize,
    /// Maximum destroy/repair iterations before the engine retires.
    pub lns_max_iters: usize,
    /// Consecutive non-improving iterations before the engine escalates the
    /// destroy size (1 → 2 → 4 → … neighborhoods freed at once); once the
    /// escalation ladder is exhausted and another such streak passes, the
    /// engine retires instead of burning CPU the exact search could use.
    pub lns_stall: usize,
    /// Tabu tenure: a destroyed neighborhood is not re-destroyed for this
    /// many iterations unless it just improved the incumbent (aspiration).
    pub tabu_tenure: usize,
    /// Run the engine inline (to completion, before the tree search starts)
    /// instead of on its own thread. Slower wall-clock but the published
    /// incumbent trace is bit-identical at any thread count — used by the
    /// determinism proptests.
    pub sync: bool,
}

impl Default for HeurConfig {
    fn default() -> Self {
        HeurConfig {
            enabled: true,
            lns: true,
            lns_node_budget: 150,
            lns_max_iters: 400,
            lns_stall: 12,
            tabu_tenure: 3,
            sync: false,
        }
    }
}

impl HeurConfig {
    /// A configuration with every primal heuristic disabled (the
    /// `heur_off` ablation: pure exact search).
    pub fn off() -> Self {
        HeurConfig {
            enabled: false,
            lns: false,
            ..Default::default()
        }
    }

    /// Rounding/diving only — the pre-LNS behaviour of the solver.
    pub fn dives_only() -> Self {
        HeurConfig {
            lns: false,
            ..Default::default()
        }
    }
}

/// Durable-solve settings: where and how often the watchdog thread persists
/// [`crate::checkpoint::SearchFrame`] snapshots, and the optional stall
/// window after which a worker pool with no node progress gets a clean
/// checkpointed abort.
#[derive(Debug, Clone)]
pub struct CheckpointConfig {
    /// Frame file path. The writer also uses `<path>.tmp` and keeps the
    /// previous good frame at `<path>.prev` for torn-write fallback.
    pub path: std::path::PathBuf,
    /// Snapshot cadence. `Duration::ZERO` means a frame at every node
    /// boundary (test cadence; far too slow for production solves).
    pub every: Duration,
    /// Stall window: when no branch-and-bound node completes for this long,
    /// the watchdog writes a final frame and aborts the search cleanly with
    /// a limit status instead of leaving a hung process. `None` disables
    /// stall detection.
    pub stall: Option<Duration>,
}

impl CheckpointConfig {
    /// Checkpointing to `path` with the default 1 s cadence and no stall
    /// watchdog.
    pub fn new(path: impl Into<std::path::PathBuf>) -> Self {
        CheckpointConfig {
            path: path.into(),
            every: Duration::from_secs(1),
            stall: None,
        }
    }

    /// Sets the snapshot cadence.
    pub fn with_cadence(mut self, every: Duration) -> Self {
        self.every = every;
        self
    }

    /// Enables the stall watchdog with the given silence window.
    pub fn with_stall_watchdog(mut self, window: Duration) -> Self {
        self.stall = Some(window);
        self
    }
}

/// Configuration for [`crate::Solver`].
///
/// # Examples
///
/// ```
/// use milp::Config;
/// use std::time::Duration;
///
/// let cfg = Config::default()
///     .with_time_limit(Duration::from_secs(60))
///     .with_rel_gap(1e-4);
/// assert_eq!(cfg.rel_gap, 1e-4);
/// ```
#[derive(Debug, Clone)]
pub struct Config {
    /// Primal/dual feasibility tolerance.
    pub feas_tol: f64,
    /// Reduced-cost optimality tolerance.
    pub opt_tol: f64,
    /// Integrality tolerance: `x` counts as integral if within this of a
    /// whole number.
    pub int_tol: f64,
    /// Relative MIP gap at which the search stops.
    pub rel_gap: f64,
    /// Absolute MIP gap at which the search stops.
    pub abs_gap: f64,
    /// Wall-clock limit for the whole solve (`None` = unlimited).
    pub time_limit: Option<Duration>,
    /// Maximum number of branch-and-bound nodes (`None` = unlimited).
    pub node_limit: Option<usize>,
    /// Maximum simplex iterations per LP solve (`None` = unlimited).
    pub iter_limit: Option<usize>,
    /// Refactorize the basis after this many eta updates.
    pub refactor_interval: usize,
    /// Branching rule.
    pub branching: Branching,
    /// Node selection rule.
    pub node_selection: NodeSelection,
    /// Warm-start reoptimization strategy ([`ReoptMode::Auto`] tries the
    /// dual simplex whenever the inherited basis is dual-feasible).
    pub reopt: ReoptMode,
    /// Entering-variable pricing rule for the primal simplex.
    pub pricing: PricingRule,
    /// Fix nonbasic integer variables whose reduced cost exceeds the
    /// primal–dual gap (at the root and, in the sequential search, on
    /// incumbent improvements).
    pub reduced_cost_fixing: bool,
    /// Run the presolver before solving.
    pub presolve: bool,
    /// Primal-heuristic settings: root rounding/diving, in-tree dives, and
    /// the anytime LNS + tabu engine (all on by default).
    pub heuristics: HeurConfig,
    /// Print progress lines to stderr.
    pub verbose: bool,
    /// Random seed for tie-breaking perturbations.
    pub seed: u64,
    /// Number of branch-and-bound worker threads. `0` (the default) uses
    /// [`std::thread::available_parallelism`]; `1` runs the original
    /// single-threaded search. The optimal objective is the same at any
    /// thread count (within the gap tolerances); node counts and timings
    /// vary with scheduling.
    pub threads: usize,
    /// Cooperative cancellation token. When set, the solve winds down at the
    /// next checkpoint after [`CancelToken::cancel`] and returns the best
    /// incumbent with a limit status, exactly like a deadline expiry.
    pub cancel: Option<CancelToken>,
    /// Warm-start hint: a feasible point of the problem in **original**
    /// (pre-presolve) variable order — typically the previous optimum of a
    /// closely related solve. The solver re-validates it against the current
    /// rows, bounds, and integrality; when it still holds, it seeds the
    /// initial incumbent so the tree search starts with a proven primal
    /// bound and reduced-cost fixing bites from the root. A stale or
    /// inconsistent vector is silently ignored (the solve runs cold but
    /// stays correct), and the hint is never consulted while column
    /// generation is growing the variable space.
    pub warm_start: Option<Vec<f64>>,
    /// Deterministic fault-injection plan (tests only): forces LU
    /// singularities, worker panics, and simulated deadline expiry so every
    /// recovery path is exercised.
    pub faults: Option<FaultInjection>,
    /// Durable-solve settings: `Some` enables periodic checkpoint frames
    /// and the watchdog thread; write time is debited from the deadline.
    pub checkpoint: Option<CheckpointConfig>,
    /// Cutting-plane separation settings.
    pub cuts: CutConfig,
    /// Column-generation settings (consulted only when a column source is
    /// supplied via [`crate::Solver::solve_with_columns`]).
    pub colgen: ColGenConfig,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            feas_tol: 1e-7,
            opt_tol: 1e-7,
            int_tol: 1e-6,
            rel_gap: 1e-6,
            abs_gap: 1e-9,
            time_limit: None,
            node_limit: None,
            iter_limit: None,
            refactor_interval: 64,
            branching: Branching::default(),
            node_selection: NodeSelection::default(),
            reopt: ReoptMode::default(),
            pricing: PricingRule::default(),
            reduced_cost_fixing: true,
            presolve: true,
            heuristics: HeurConfig::default(),
            verbose: false,
            seed: 0x5eed,
            threads: 0,
            cancel: None,
            warm_start: None,
            faults: None,
            checkpoint: None,
            cuts: CutConfig::default(),
            colgen: ColGenConfig::default(),
        }
    }
}

impl Config {
    /// Returns the default configuration (same as [`Default::default`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets a wall-clock time limit.
    pub fn with_time_limit(mut self, d: Duration) -> Self {
        self.time_limit = Some(d);
        self
    }

    /// Sets the node limit.
    pub fn with_node_limit(mut self, n: usize) -> Self {
        self.node_limit = Some(n);
        self
    }

    /// Sets the relative MIP gap.
    pub fn with_rel_gap(mut self, g: f64) -> Self {
        self.rel_gap = g;
        self
    }

    /// Enables or disables presolve.
    pub fn with_presolve(mut self, on: bool) -> Self {
        self.presolve = on;
        self
    }

    /// Enables or disables all primal heuristics (dives *and* LNS). For
    /// finer control use [`Config::with_heur`].
    pub fn with_heuristics(mut self, on: bool) -> Self {
        self.heuristics = if on {
            HeurConfig::default()
        } else {
            HeurConfig::off()
        };
        self
    }

    /// Sets the primal-heuristic configuration.
    pub fn with_heur(mut self, heur: HeurConfig) -> Self {
        self.heuristics = heur;
        self
    }

    /// Enables or disables progress output.
    pub fn with_verbose(mut self, on: bool) -> Self {
        self.verbose = on;
        self
    }

    /// Sets the number of search worker threads (`0` = auto-detect).
    pub fn with_threads(mut self, n: usize) -> Self {
        self.threads = n;
        self
    }

    /// Sets the warm-start reoptimization strategy.
    pub fn with_reopt(mut self, mode: ReoptMode) -> Self {
        self.reopt = mode;
        self
    }

    /// Sets the simplex pricing rule.
    pub fn with_pricing(mut self, rule: PricingRule) -> Self {
        self.pricing = rule;
        self
    }

    /// Enables or disables reduced-cost variable fixing.
    pub fn with_reduced_cost_fixing(mut self, on: bool) -> Self {
        self.reduced_cost_fixing = on;
        self
    }

    /// Attaches a cooperative cancellation token.
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Sets the random seed for tie-breaking perturbations and heuristics.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Splits a remaining wall-clock budget evenly across `subproblems`
    /// concurrent solves and sets it as this config's time limit. A
    /// decomposition master loop calls this each round so late zones don't
    /// inherit time the early zones already spent. Zero subproblems count
    /// as one; the slice is floored at 100 ms so a nearly-exhausted budget
    /// still lets each solve run its root LP and return a limit status.
    pub fn budget_slice(mut self, remaining: Duration, subproblems: usize) -> Self {
        let share = remaining / subproblems.max(1) as u32;
        self.time_limit = Some(share.max(Duration::from_millis(100)));
        self
    }

    /// Supplies a warm-start point (original variable order) to seed the
    /// initial incumbent after validation.
    pub fn with_warm_start(mut self, values: Vec<f64>) -> Self {
        self.warm_start = Some(values);
        self
    }

    /// Attaches a deterministic fault-injection plan (tests only).
    pub fn with_faults(mut self, faults: FaultInjection) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Enables durable solving: periodic checkpoint frames at
    /// `checkpoint.path` plus the watchdog thread.
    pub fn with_checkpoint(mut self, checkpoint: CheckpointConfig) -> Self {
        self.checkpoint = Some(checkpoint);
        self
    }

    /// Sets the cutting-plane configuration.
    pub fn with_cuts(mut self, cuts: CutConfig) -> Self {
        self.cuts = cuts;
        self
    }

    /// Sets the column-generation configuration.
    pub fn with_colgen(mut self, colgen: ColGenConfig) -> Self {
        self.colgen = colgen;
        self
    }

    /// Whether the attached cancellation token (if any) has fired.
    pub fn is_cancelled(&self) -> bool {
        self.cancel.as_ref().is_some_and(CancelToken::is_cancelled)
    }

    /// Resolves [`Config::threads`] to a concrete worker count: `0` maps to
    /// the machine's available parallelism (or `1` if that is unknown).
    pub fn effective_threads(&self) -> usize {
        match self.threads {
            0 => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            n => n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chain() {
        let cfg = Config::new()
            .with_time_limit(Duration::from_millis(500))
            .with_node_limit(10)
            .with_rel_gap(0.01)
            .with_presolve(false)
            .with_heuristics(false)
            .with_verbose(true);
        assert_eq!(cfg.time_limit, Some(Duration::from_millis(500)));
        assert_eq!(cfg.node_limit, Some(10));
        assert_eq!(cfg.rel_gap, 0.01);
        assert!(!cfg.presolve);
        assert!(!cfg.heuristics.enabled && !cfg.heuristics.lns);
        assert!(cfg.verbose);
    }

    #[test]
    fn heur_config_defaults_and_off() {
        let d = Config::default();
        assert!(d.heuristics.enabled && d.heuristics.lns);
        assert!(d.heuristics.lns_node_budget >= 1 && d.heuristics.lns_max_iters >= 1);
        assert!(!d.heuristics.sync, "sync engine is a test-only mode");
        let off = Config::default().with_heur(HeurConfig::off());
        assert!(!off.heuristics.enabled && !off.heuristics.lns);
        let dives = Config::default().with_heur(HeurConfig::dives_only());
        assert!(dives.heuristics.enabled && !dives.heuristics.lns);
    }

    #[test]
    fn reopt_and_pricing_builders() {
        let cfg = Config::new()
            .with_reopt(ReoptMode::Primal)
            .with_pricing(PricingRule::Dantzig)
            .with_reduced_cost_fixing(false);
        assert_eq!(cfg.reopt, ReoptMode::Primal);
        assert_eq!(cfg.pricing, PricingRule::Dantzig);
        assert!(!cfg.reduced_cost_fixing);
        // defaults: dual reoptimization + Devex + fixing on
        let d = Config::default();
        assert_eq!(d.reopt, ReoptMode::Auto);
        assert_eq!(d.pricing, PricingRule::Devex);
        assert!(d.reduced_cost_fixing);
    }

    #[test]
    fn cut_config_defaults_and_off() {
        let d = Config::default();
        assert!(d.cuts.enabled && d.cuts.gomory && d.cuts.cover && d.cuts.clique);
        assert!(d.cuts.max_rounds >= 1);
        assert!(!d.cuts.node_cuts, "node cuts are opt-in");
        let off = Config::default().with_cuts(CutConfig::off());
        assert!(!off.cuts.enabled);
        assert!(!off.cuts.gomory && !off.cuts.cover && !off.cuts.clique);
    }

    #[test]
    fn colgen_config_defaults_and_off() {
        let d = Config::default();
        assert!(d.colgen.enabled);
        assert!(d.colgen.max_rounds >= 1 && d.colgen.max_cols_per_round >= 1);
        let off = Config::default().with_colgen(ColGenConfig::off());
        assert!(!off.colgen.enabled);
    }

    #[test]
    fn threads_resolution() {
        assert_eq!(Config::new().with_threads(4).effective_threads(), 4);
        assert_eq!(Config::new().with_threads(1).effective_threads(), 1);
        // auto-detect resolves to at least one worker
        assert!(Config::new().effective_threads() >= 1);
    }
}
