//! Solve outcomes: status codes, solutions, and search statistics.

use crate::error::SolveError;
use crate::problem::VarId;
use std::time::Duration;

/// Final status of a solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Status {
    /// Proven optimal (within the configured gap).
    Optimal,
    /// Proven infeasible.
    Infeasible,
    /// Proven unbounded.
    Unbounded,
    /// A limit (time/node/iteration) was hit; a feasible incumbent exists.
    LimitFeasible,
    /// A limit was hit with no feasible incumbent found.
    LimitNoSolution,
    /// The solve failed numerically even after every recovery rung; see
    /// [`Solution::solve_error`] for the underlying [`SolveError`].
    NumericFailure,
}

impl Status {
    /// Whether a usable solution vector is available.
    pub fn has_solution(self) -> bool {
        matches!(self, Status::Optimal | Status::LimitFeasible)
    }
}

impl std::fmt::Display for Status {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Status::Optimal => "optimal",
            Status::Infeasible => "infeasible",
            Status::Unbounded => "unbounded",
            Status::LimitFeasible => "limit reached (feasible incumbent)",
            Status::LimitNoSolution => "limit reached (no solution)",
            Status::NumericFailure => "numeric failure (recovery exhausted)",
        };
        f.write_str(s)
    }
}

/// Counters describing the work performed during a solve.
#[derive(Debug, Clone, Default)]
pub struct Stats {
    /// Branch-and-bound nodes processed (1 for a pure LP).
    pub nodes: usize,
    /// Total simplex iterations across all LP solves.
    pub simplex_iters: usize,
    /// Simplex iterations spent in primal Phase 1 (feasibility restoration);
    /// warm starts that dual-reoptimize successfully contribute none.
    pub phase1_iters: usize,
    /// Simplex iterations spent in the dual-simplex reoptimizer.
    pub dual_iters: usize,
    /// Number of LP relaxations solved.
    pub lp_solves: usize,
    /// Integer variable bounds tightened by reduced-cost fixing (at the
    /// root and on incumbent improvements).
    pub rc_fixed: usize,
    /// Incumbents found by heuristics (as opposed to node LPs).
    pub heuristic_solutions: usize,
    /// Wall-clock time of the whole solve.
    pub elapsed: Duration,
    /// Rows removed by presolve.
    pub presolve_rows_removed: usize,
    /// Variables fixed/removed by presolve.
    pub presolve_vars_removed: usize,
    /// LP solves that needed at least one recovery rung (Bland restart or
    /// perturb-and-retry) before succeeding.
    pub lp_recoveries: usize,
    /// Parallel search workers that panicked and were isolated.
    pub worker_panics: usize,
    /// Branch-and-bound nodes dropped after an unrecoverable LP error (the
    /// final status is downgraded so optimality is never claimed past them).
    pub dropped_nodes: usize,
}

/// Result of solving a [`crate::Problem`].
#[derive(Debug, Clone)]
pub struct Solution {
    pub(crate) status: Status,
    pub(crate) objective: f64,
    pub(crate) best_bound: f64,
    pub(crate) values: Vec<f64>,
    pub(crate) stats: Stats,
    pub(crate) error: Option<SolveError>,
}

impl Solution {
    /// The final status.
    pub fn status(&self) -> Status {
        self.status
    }

    /// Objective value of the incumbent (meaningful when
    /// [`Status::has_solution`]); in the problem's own sense.
    pub fn objective(&self) -> f64 {
        self.objective
    }

    /// Best proven bound on the optimum (lower bound when minimizing).
    pub fn best_bound(&self) -> f64 {
        self.best_bound
    }

    /// The relative gap between incumbent and bound, or `f64::INFINITY`
    /// when no incumbent exists.
    pub fn gap(&self) -> f64 {
        if !self.status.has_solution() {
            return f64::INFINITY;
        }
        let denom = self.objective.abs().max(1e-10);
        (self.objective - self.best_bound).abs() / denom
    }

    /// Value of variable `v` in the incumbent.
    ///
    /// # Panics
    ///
    /// Panics if no solution is available (check [`Status::has_solution`]).
    pub fn value(&self, v: VarId) -> f64 {
        assert!(
            self.status.has_solution(),
            "no solution available (status: {})",
            self.status
        );
        self.values[v.index()]
    }

    /// Full solution vector in variable order.
    ///
    /// # Panics
    ///
    /// Panics if no solution is available.
    pub fn values(&self) -> &[f64] {
        assert!(
            self.status.has_solution(),
            "no solution available (status: {})",
            self.status
        );
        &self.values
    }

    /// Interprets variable `v` as a 0/1 indicator (rounding its value).
    ///
    /// # Panics
    ///
    /// Panics if no solution is available.
    pub fn is_one(&self, v: VarId) -> bool {
        self.value(v) > 0.5
    }

    /// Search statistics.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// The [`SolveError`] behind a [`Status::NumericFailure`], if any.
    pub fn solve_error(&self) -> Option<&SolveError> {
        self.error.as_ref()
    }

    pub(crate) fn infeasible(stats: Stats) -> Self {
        Solution {
            status: Status::Infeasible,
            objective: f64::INFINITY,
            best_bound: f64::INFINITY,
            values: Vec::new(),
            stats,
            error: None,
        }
    }

    pub(crate) fn unbounded(stats: Stats) -> Self {
        Solution {
            status: Status::Unbounded,
            objective: f64::NEG_INFINITY,
            best_bound: f64::NEG_INFINITY,
            values: Vec::new(),
            stats,
            error: None,
        }
    }

    pub(crate) fn numeric_failure(stats: Stats, error: SolveError) -> Self {
        Solution {
            status: Status::NumericFailure,
            objective: f64::INFINITY,
            best_bound: f64::NEG_INFINITY,
            values: Vec::new(),
            stats,
            error: Some(error),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_solution_availability() {
        assert!(Status::Optimal.has_solution());
        assert!(Status::LimitFeasible.has_solution());
        assert!(!Status::Infeasible.has_solution());
        assert!(!Status::Unbounded.has_solution());
        assert!(!Status::LimitNoSolution.has_solution());
        assert!(!Status::NumericFailure.has_solution());
    }

    #[test]
    fn numeric_failure_carries_error() {
        let s = Solution::numeric_failure(Stats::default(), SolveError::NumericBlowup);
        assert_eq!(s.status(), Status::NumericFailure);
        assert_eq!(s.solve_error(), Some(&SolveError::NumericBlowup));
        assert!(!s.status().has_solution());
    }

    #[test]
    fn gap_computation() {
        let s = Solution {
            status: Status::LimitFeasible,
            objective: 110.0,
            best_bound: 100.0,
            values: vec![1.0],
            stats: Stats::default(),
            error: None,
        };
        assert!((s.gap() - 10.0 / 110.0).abs() < 1e-12);
        let inf = Solution::infeasible(Stats::default());
        assert_eq!(inf.gap(), f64::INFINITY);
    }

    #[test]
    #[should_panic(expected = "no solution available")]
    fn value_panics_without_solution() {
        let s = Solution::infeasible(Stats::default());
        let _ = s.value(VarId(0));
    }
}
