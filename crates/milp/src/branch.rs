//! LP-based branch and bound.
//!
//! The driver presolves the problem, builds the computational LP form once,
//! and explores a tree of bound-tightened LP relaxations. Nodes carry their
//! bound *deltas* from the root plus a shared warm-start basis, so node
//! storage stays small. Node selection is best-bound with depth-first
//! plunging by default; branching uses pseudo-costs with a most-fractional
//! fallback.
//!
//! # Parallel search
//!
//! With [`Config::threads`] above 1 the tree is explored by scoped worker
//! threads: open nodes live in a shared best-bound heap behind a `Mutex`,
//! the incumbent objective is published through an `AtomicU64` (f64 bits)
//! so every worker prunes against the freshest bound, and each worker runs
//! its own simplex instance with the shared warm-start bases (`Arc`).
//! Workers plunge depth-first locally exactly like the sequential search.
//! Node processing order differs run to run, so pseudo-cost learning and
//! node counts vary — but pruning only ever discards nodes whose LP bound
//! cannot beat the incumbent, so the *objective value* of the result is
//! deterministic to within the configured gap tolerances at any thread
//! count. `threads: 1` runs the original single-threaded loop unchanged.

use crate::checkpoint::{self, CkptRuntime, FrameError, FrameNode, SearchFrame};
use crate::config::{Branching, Config, NodeSelection};
use crate::cuts;
use crate::error::relock;
use crate::heur;
use crate::presolve::{presolve, Presolved};
use crate::pricing::{self, ColumnSource};
use crate::problem::{Problem, Sense, VarId, VarType};
use crate::simplex::{solve_lp, LpData, LpStatus, VStat};
use crate::solution::{Solution, Stats, Status};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering as AtomicOrdering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// One open node: bound changes relative to the root plus bookkeeping.
/// `Clone` lets the parallel search keep an in-flight copy per worker so a
/// panicking worker's node can be re-queued instead of lost.
#[derive(Clone)]
struct Node {
    /// `(var, new_lb, new_ub)` tightenings along the path from the root.
    changes: Vec<(usize, f64, f64)>,
    /// LP bound inherited from the parent (internal minimize sense).
    bound: f64,
    depth: usize,
    /// Warm-start statuses shared with the sibling (and, in parallel
    /// search, across worker threads).
    warm: Option<Arc<Vec<VStat>>>,
}

/// Max-heap adapter: we want the node with the *smallest* bound on top.
struct HeapNode(Node);

impl PartialEq for HeapNode {
    fn eq(&self, other: &Self) -> bool {
        self.0.bound == other.0.bound
    }
}
impl Eq for HeapNode {}
impl PartialOrd for HeapNode {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapNode {
    fn cmp(&self, other: &Self) -> Ordering {
        // reversed: smaller bound = greater priority
        other
            .0
            .bound
            .partial_cmp(&self.0.bound)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.0.depth.cmp(&self.0.depth))
    }
}

/// Per-variable pseudo-cost records. Parallel workers keep their own copy:
/// the records steer branching, not correctness, so they need no sharing.
struct PseudoCosts {
    up_sum: Vec<f64>,
    up_cnt: Vec<usize>,
    down_sum: Vec<f64>,
    down_cnt: Vec<usize>,
}

impl PseudoCosts {
    fn new(n: usize) -> Self {
        PseudoCosts {
            up_sum: vec![0.0; n],
            up_cnt: vec![0; n],
            down_sum: vec![0.0; n],
            down_cnt: vec![0; n],
        }
    }

    fn record(&mut self, var: usize, up: bool, degradation_per_frac: f64) {
        let d = degradation_per_frac.max(0.0);
        if up {
            self.up_sum[var] += d;
            self.up_cnt[var] += 1;
        } else {
            self.down_sum[var] += d;
            self.down_cnt[var] += 1;
        }
    }

    fn score(&self, var: usize, frac: f64) -> f64 {
        let eps = 1e-6;
        let up = if self.up_cnt[var] > 0 {
            self.up_sum[var] / self.up_cnt[var] as f64
        } else {
            1.0
        };
        let down = if self.down_cnt[var] > 0 {
            self.down_sum[var] / self.down_cnt[var] as f64
        } else {
            1.0
        };
        (up * (1.0 - frac)).max(eps) * (down * frac).max(eps)
    }

    fn initialized(&self, var: usize) -> bool {
        self.up_cnt[var] > 0 || self.down_cnt[var] > 0
    }
}

/// Read-only problem data shared by every search worker.
struct SearchCtx<'a> {
    lp: &'a LpData,
    root_lb: &'a [f64],
    root_ub: &'a [f64],
    int_vars: &'a [usize],
    reduced: &'a Problem,
    cfg: &'a Config,
    deadline: Option<Instant>,
    /// `+1.0` when the user problem minimizes, `-1.0` when it maximizes.
    sign: f64,
    obj_offset: f64,
    /// Problem structure the separators work from.
    cut_ctx: &'a cuts::CutContext,
    /// Shared cut pool; its applied list is append-only and globally
    /// ordered, so workers can extend local LP copies by prefix.
    cut_pool: &'a Mutex<cuts::CutPool>,
    /// Lock-free mirror of the pool's applied length, written under the
    /// pool lock by whoever applies cuts. Workers check it before locking,
    /// so the common no-new-cuts node solve never touches the pool mutex.
    cuts_applied_hint: &'a AtomicUsize,
    /// Cuts already baked into `lp` (the root cuts); node-level syncing
    /// starts from this prefix.
    root_cuts: usize,
    /// Durable-solve runtime, when [`Config::checkpoint`] is set: snapshot
    /// cadence claims, the frame hand-off slot, the write-time debit, and
    /// the stall watchdog's abort flag.
    ckpt: Option<&'a CkptRuntime>,
    /// Shared incumbent: tree workers, dives, and the LNS engine all
    /// publish through (and prune against) this one state.
    inc: &'a Incumbent,
}

// The context crosses scoped-thread boundaries; keep that statically true.
const _: () = {
    const fn assert_sync<T: Sync>() {}
    assert_sync::<SearchCtx<'_>>();
};

impl SearchCtx<'_> {
    /// Translates an internal (minimize-sense) objective to the user sense.
    fn user_obj(&self, internal: f64) -> f64 {
        self.sign * internal + self.obj_offset
    }
}

/// Shared incumbent state: the objective as atomic f64 bits for lock-free
/// pruning, the full vector behind a mutex, and a timestamped publication
/// trace for the anytime metrics. One instance is shared by the tree search
/// (sequential or parallel), the dive heuristics, and the LNS + tabu engine,
/// so an improvement from any of them immediately tightens every worker's
/// pruning bound.
pub(crate) struct Incumbent {
    /// Incumbent objective as f64 bits (∞ = none), internal minimize sense.
    bound: AtomicU64,
    /// Incumbent vector; `bound` is only written while holding this.
    full: Mutex<Option<(f64, Vec<f64>)>>,
    /// `(seconds since solve start, internal objective)` per accepted
    /// improvement, in publication order (objectives strictly decrease).
    trace: Mutex<Vec<(f64, f64)>>,
    /// Solve start: the zero point of the trace timestamps.
    start: Instant,
}

impl Incumbent {
    pub(crate) fn new(start: Instant) -> Self {
        Incumbent {
            bound: AtomicU64::new(INF_BITS),
            full: Mutex::new(None),
            trace: Mutex::new(Vec::new()),
            start,
        }
    }

    /// The incumbent objective (∞ when none), for lock-free pruning.
    pub(crate) fn bound(&self) -> f64 {
        f64::from_bits(self.bound.load(AtomicOrdering::SeqCst))
    }

    /// Installs `(obj, x)` as the incumbent if it improves; returns whether
    /// it did. Callers are responsible for only offering feasible points.
    pub(crate) fn offer(&self, obj: f64, x: Vec<f64>) -> bool {
        let mut guard = relock(&self.full);
        let improves = guard.as_ref().is_none_or(|(o, _)| obj < *o);
        if improves {
            *guard = Some((obj, x));
            self.bound.store(obj.to_bits(), AtomicOrdering::SeqCst);
            relock(&self.trace).push((self.start.elapsed().as_secs_f64(), obj));
        }
        improves
    }

    /// A clone of the current best `(objective, x)`.
    pub(crate) fn best(&self) -> Option<(f64, Vec<f64>)> {
        relock(&self.full).clone()
    }

    /// Consumes the state: the final incumbent plus the publication trace.
    #[allow(clippy::type_complexity)]
    fn into_parts(self) -> (Option<(f64, Vec<f64>)>, Vec<(f64, f64)>) {
        (
            self.full.into_inner().unwrap_or_else(PoisonError::into_inner),
            self.trace.into_inner().unwrap_or_else(PoisonError::into_inner),
        )
    }
}

/// What a tree search hands back to the wrap-up code. The incumbent itself
/// lives in the shared [`Incumbent`] (read by [`wrap_up`] after the search
/// and the heuristic engine have both stopped).
struct SearchOutcome {
    /// Smallest bound among still-open nodes (∞ when the tree is exhausted).
    open_bound: f64,
    hit_limit: bool,
    /// A node LP was unbounded (only possible if the root was; defensive).
    unbounded: bool,
    /// Smallest bound among nodes dropped after unrecoverable LP errors
    /// (∞ when none). Folded into the final bound so a solve that lost
    /// subtrees never claims optimality past them.
    dropped_bound: f64,
}

impl SearchCtx<'_> {
    /// Whether the solve should wind down: wall-clock deadline (net of the
    /// checkpoint-time debit), cooperative cancellation, a watchdog stall
    /// abort, or an injected (simulated) deadline expiry.
    fn should_stop(&self, nodes: usize) -> bool {
        self.effective_deadline().is_some_and(|d| Instant::now() >= d)
            || self.cfg.is_cancelled()
            || self.ckpt.is_some_and(CkptRuntime::stall_abort_requested)
            || self
                .cfg
                .faults
                .as_ref()
                .is_some_and(|f| f.deadline_expired(nodes))
    }

    /// The wall-clock deadline with checkpoint assembly/write time debited:
    /// durability overhead shrinks the search budget instead of silently
    /// extending the wall time, mirroring how the exploration layer charges
    /// encode time against a shared limit.
    fn effective_deadline(&self) -> Option<Instant> {
        let d = self.deadline?;
        match self.ckpt {
            Some(rt) => Some(d.checked_sub(rt.debit()).unwrap_or(d)),
            None => Some(d),
        }
    }
}

/// Most fractional integer variable of `x`, if any. Fractionality ties are
/// broken by larger objective coefficient magnitude (branching on a
/// variable the objective actually cares about moves the bound faster on
/// symmetric routing models), then by lower index for determinism.
fn most_fractional(x: &[f64], c: &[f64], int_vars: &[usize], int_tol: f64) -> Option<(usize, f64)> {
    let mut best: Option<(usize, f64, f64, f64)> = None; // (j, frac, dist, |c_j|)
    for &j in int_vars {
        let f = x[j] - x[j].floor();
        let dist = (f - 0.5).abs();
        if f > int_tol && f < 1.0 - int_tol {
            let mag = c[j].abs();
            let better = match best {
                None => true,
                Some((_, _, d, m)) => dist < d - 1e-12 || (dist < d + 1e-12 && mag > m),
            };
            if better {
                best = Some((j, f, dist, mag));
            }
        }
    }
    best.map(|(j, f, _, _)| (j, f))
}

/// Reduced-cost variable fixing: given the root LP bound `lp_bound` and an
/// incumbent objective `inc_obj` (both internal minimize sense) plus the
/// root reduced costs `dj`, any solution better than the incumbent keeps a
/// nonbasic variable within `gap / |dj|` of the bound it rests at, so the
/// opposite bound can be pulled in globally. Returns the number of bounds
/// tightened. A small cushion keeps incumbent-equal solutions reachable.
fn fix_by_reduced_costs(
    lb: &mut [f64],
    ub: &mut [f64],
    dj: &[f64],
    int_vars: &[usize],
    lp_bound: f64,
    inc_obj: f64,
) -> Vec<(usize, f64, f64)> {
    let mut fixed: Vec<(usize, f64, f64)> = Vec::new();
    if dj.is_empty() || !lp_bound.is_finite() || !inc_obj.is_finite() {
        return fixed;
    }
    let gap = (inc_obj - lp_bound).max(0.0);
    let cushion = 1e-6 * (1.0 + gap.abs());
    for &j in int_vars {
        if lb[j] >= ub[j] {
            continue; // already fixed
        }
        let d = dj[j];
        // At optimality d > 0 only at a lower bound and d < 0 only at an
        // upper bound, so the sign identifies the resting bound.
        if d > 1e-9 && lb[j].is_finite() {
            let limit = lb[j] + ((gap + cushion) / d).floor();
            if limit < ub[j] - 1e-9 {
                ub[j] = limit.max(lb[j]);
                fixed.push((j, f64::NEG_INFINITY, ub[j]));
            }
        } else if d < -1e-9 && ub[j].is_finite() {
            let limit = ub[j] - ((gap + cushion) / -d).floor();
            if limit > lb[j] + 1e-9 {
                lb[j] = limit.min(ub[j]);
                fixed.push((j, lb[j], f64::INFINITY));
            }
        }
    }
    fixed
}

/// Bounded time window for one dive, clamped to the remaining solver
/// budget: a dive may want `want_secs`, but it never gets more than half
/// of what is left before `deadline`, and is skipped outright (`None`)
/// when the budget is nearly exhausted — so a last-gasp dive cannot
/// overshoot a small `time_limit`.
fn dive_window(deadline: Option<Instant>, want_secs: f64) -> Option<Instant> {
    let now = Instant::now();
    match deadline {
        None => Some(now + Duration::from_secs_f64(want_secs)),
        Some(d) => {
            let remaining = d.saturating_duration_since(now).as_secs_f64();
            if remaining <= 0.05 {
                return None;
            }
            Some(now + Duration::from_secs_f64(want_secs.min(remaining * 0.5)))
        }
    }
}

/// Solves `problem` by presolve + branch and bound. `start` anchors the time
/// limit. Called through [`crate::Solver::solve`].
pub fn solve_milp(problem: &Problem, cfg: &Config, start: Instant) -> Solution {
    solve_milp_with(problem, cfg, start, None)
}

/// [`solve_milp`] with an optional column source for root column
/// generation. When a source is supplied (and [`Config::colgen`] is
/// enabled), presolve is forced to the identity so the row indices the
/// source prices against are exactly the caller's encode-time indices, and
/// the root LP is grown by a solve-price-reoptimize loop before cut
/// separation. Called through [`crate::Solver::solve_with_columns`].
pub fn solve_milp_with(
    problem: &Problem,
    cfg: &Config,
    start: Instant,
    mut columns: Option<&mut dyn ColumnSource>,
) -> Solution {
    let deadline = cfg.time_limit.map(|d| start + d);
    let minimize = problem.sense() == Sense::Minimize;
    let mut stats = Stats::default();

    // --- Presolve ---
    // Pricing requires stable row indices (the source addresses rows by
    // their encode-time position), so a column source forces the identity.
    let mut ps: Presolved = if cfg.presolve && columns.is_none() {
        presolve(problem, minimize)
    } else {
        identity_presolved(problem)
    };
    stats.presolve_rows_removed = ps.rows_removed;
    stats.presolve_vars_removed = ps.vars_removed;
    if let Some(conclusion) = ps.conclusion {
        stats.elapsed = start.elapsed();
        return match conclusion {
            Status::Infeasible => Solution::infeasible(stats),
            Status::Unbounded => Solution::unbounded(stats),
            _ => unreachable!("presolve only concludes infeasible/unbounded"),
        };
    }

    // --- Build internal (minimize) LP form ---
    // (`ps.reduced` is still mutable here: the pricing loop below may append
    // columns to it; the long-lived `reduced` borrow is taken afterwards.)
    let n = ps.reduced.num_vars();
    let sign = if minimize { 1.0 } else { -1.0 };
    let c: Vec<f64> = ps.reduced.objective().iter().map(|&v| sign * v).collect();
    let (row_lb, row_ub): (Vec<f64>, Vec<f64>) = ps
        .reduced
        .row_ids()
        .map(|r| ps.reduced.row_bounds(r))
        .unzip();
    let mut lp = LpData {
        a: ps.reduced.matrix(),
        c,
        row_lb,
        row_ub,
    };
    let mut root_lb: Vec<f64> = (0..n).map(|j| ps.reduced.var_bounds(VarId(j)).0).collect();
    let mut root_ub: Vec<f64> = (0..n).map(|j| ps.reduced.var_bounds(VarId(j)).1).collect();
    let mut int_vars: Vec<usize> = (0..n)
        .filter(|&j| ps.reduced.var_type(VarId(j)) != VarType::Continuous)
        .collect();
    let obj_offset = ps.reduced.obj_offset();
    let user_obj = |internal: f64| sign * internal + obj_offset;

    // Fingerprint the base LP before pricing or cuts mutate it: checkpoint
    // frames carry this hash, and resume recomputes it from a fresh encode
    // so a frame can never be applied to a different problem.
    let fingerprint = if cfg.checkpoint.is_some() {
        frame_fingerprint(&lp, &root_lb, &root_ub, &int_vars)
    } else {
        0
    };

    // --- Root LP ---
    stats.lp_solves += 1;
    let mut root = match solve_lp(&lp, &root_lb, &root_ub, cfg, None, deadline) {
        Ok(r) => r,
        Err(e) => {
            // Even the recovery ladder could not solve the root relaxation:
            // there is nothing to search, so surface the failure.
            stats.nodes = 1;
            stats.elapsed = start.elapsed();
            return Solution::numeric_failure(stats, e);
        }
    };
    stats.simplex_iters += root.iters;
    stats.phase1_iters += root.phase1_iters;
    stats.dual_iters += root.dual_iters;
    if root.recoveries > 0 {
        stats.lp_recoveries += 1;
    }
    match root.status {
        LpStatus::Infeasible => {
            stats.nodes = 1;
            stats.elapsed = start.elapsed();
            return Solution::infeasible(stats);
        }
        LpStatus::Unbounded => {
            stats.nodes = 1;
            stats.elapsed = start.elapsed();
            return Solution::unbounded(stats);
        }
        LpStatus::Limit => {
            stats.nodes = 1;
            stats.elapsed = start.elapsed();
            return Solution {
                status: Status::LimitNoSolution,
                objective: f64::INFINITY,
                best_bound: user_obj(f64::NEG_INFINITY),
                values: Vec::new(),
                stats,
                error: None,
            };
        }
        LpStatus::Optimal => {}
    }

    // --- Root column generation ---
    // The pricing loop runs before cut separation: every Gomory cut below
    // is derived on the final column set, so no cut is ever missing a
    // coefficient for a priced-in variable. The loop grows `ps.reduced`,
    // `lp`, the root bound vectors, and `int_vars` in lockstep, and leaves
    // `root` optimal over the grown LP.
    let mut accepted_batches: Vec<checkpoint::FrameBatch> = Vec::new();
    if let Some(source) = columns.as_deref_mut() {
        if cfg.colgen.enabled {
            pricing::run_root_pricing(
                source,
                &mut ps,
                &mut lp,
                &mut root_lb,
                &mut root_ub,
                &mut int_vars,
                cfg,
                &mut root,
                deadline,
                sign,
                &mut stats,
                &mut accepted_batches,
            );
        }
    }
    let reduced = &ps.reduced;
    let int_vars = int_vars;

    // --- Root cutting planes ---
    // Separation rounds tighten the relaxation before any branching: each
    // round appends the pool's surviving cuts and dual-reoptimizes from the
    // old basis (cut slacks enter basic, which keeps it dual-feasible).
    // Gomory cuts are derived here, at the root bounds, so every cut below
    // is globally valid and the pool can be shared across workers.
    let cut_ctx = cuts::CutContext::from_problem(reduced);
    let mut cut_pool = cuts::CutPool::new();
    if cfg.cuts.enabled && !int_vars.is_empty() {
        let pre = (root.iters, root.phase1_iters, root.dual_iters, root.recoveries);
        cuts::run_root_cuts(
            &mut lp,
            &root_lb,
            &root_ub,
            cfg,
            &cut_ctx,
            &mut root,
            &mut cut_pool,
            deadline,
        );
        stats.simplex_iters += root.iters - pre.0;
        stats.phase1_iters += root.phase1_iters - pre.1;
        stats.dual_iters += root.dual_iters - pre.2;
        if root.recoveries > pre.3 {
            stats.lp_recoveries += 1;
        }
        stats.lp_solves += cut_pool.rounds;
    }
    let root_cuts = cut_pool.applied_len();
    let cuts_applied_hint = AtomicUsize::new(root_cuts);
    // Root LP bound after the cut rounds; the reported root gap measures
    // the incumbent against this tightened bound.
    let root_cut_bound = root.obj;
    let cut_pool = Mutex::new(cut_pool);

    // --- Incumbent state (internal minimize sense) ---
    // One shared instance for the whole solve: tree workers, dives, and the
    // LNS engine publish through it, and its timestamped trace yields the
    // anytime metrics in `wrap_up`.
    let inc = Incumbent::new(start);

    // A caller-supplied warm-start point (the previous optimum of a nearby
    // problem, in original variable order) seeds the incumbent when it
    // still satisfies every row, bound, and integrality constraint of
    // *this* problem: the search then opens with a proven primal bound and
    // reduced-cost fixing bites from the root. Validation happens against
    // both the original and the reduced problem — presolve may have fixed
    // variables by dominance arguments that exclude feasible-but-worse
    // points, in which case the hint is dropped rather than trusted. After
    // pricing grew the variable space the size check fails and the hint is
    // ignored (priced columns have no value in the caller's vector).
    if let Some(warm) = cfg.warm_start.as_deref() {
        if problem.check_feasible(warm, cfg.int_tol).is_none() {
            if let Some(red) = ps.map_to_reduced(warm, cfg.int_tol) {
                if reduced.check_feasible(&red, cfg.int_tol).is_none() {
                    let obj: f64 = lp.c.iter().zip(&red).map(|(&c, &x)| c * x).sum();
                    if inc.offer(obj, red) {
                        stats.warm_seeded = true;
                    }
                }
            }
        }
    }

    // Root heuristics.
    if cfg.heuristics.enabled && !int_vars.is_empty() {
        if let Some((obj, x)) = heur::try_rounding(reduced, &lp, &root.x, cfg.int_tol) {
            if inc.offer(obj, x) {
                stats.heuristic_solutions += 1;
            }
        }
        let root_dive_budget = cfg
            .time_limit
            .map(|t| (t.as_secs_f64() * 0.1).clamp(1.0, 15.0))
            .unwrap_or(15.0);
        for strategy in [
            heur::DiveStrategy::NearestInteger,
            heur::DiveStrategy::MostFractionalUp,
        ] {
            let Some(dd) = dive_window(deadline, root_dive_budget) else {
                break;
            };
            if let Some((obj, x)) = heur::dive_with(
                strategy,
                reduced,
                &lp,
                &int_vars,
                &root_lb,
                &root_ub,
                cfg,
                Some(&root.statuses),
                Some(dd),
            ) {
                if inc.offer(obj, x) {
                    stats.heuristic_solutions += 1;
                }
            }
        }
    }

    // --- Root reduced-cost fixing ---
    // With an incumbent in hand the root reduced costs bound how far any
    // nonbasic integer can move in a better solution; pull the opposite
    // bounds in before the tree search ever sees them.
    if cfg.reduced_cost_fixing && !int_vars.is_empty() {
        let inc_obj = inc.bound();
        if inc_obj.is_finite() {
            stats.rc_fixed += fix_by_reduced_costs(
                &mut root_lb,
                &mut root_ub,
                &root.dj,
                &int_vars,
                root.obj,
                inc_obj,
            )
            .len();
        }
    }

    // --- Durable-solve runtime ---
    // Everything static for the rest of the search goes into the frame
    // base; the watchdog thread (spawned around the dispatch below) arms
    // the snapshot cadence, persists frames the search threads assemble,
    // and turns a stalled worker pool into a clean checkpointed abort.
    let ckpt_rt = cfg.checkpoint.as_ref().map(|ck| {
        let base = checkpoint::FrameBase {
            fingerprint,
            root_bound: root_cut_bound,
            base_lb: root_lb.clone(),
            base_ub: root_ub.clone(),
            batches: accepted_batches,
            user_data: columns
                .as_ref()
                .map(|s| s.snapshot_state())
                .unwrap_or_default(),
        };
        CkptRuntime::new(ck.clone(), base, cfg.faults.clone())
    });

    let ctx = SearchCtx {
        lp: &lp,
        root_lb: &root_lb,
        root_ub: &root_ub,
        int_vars: &int_vars,
        reduced,
        cfg,
        deadline,
        sign,
        obj_offset,
        cut_ctx: &cut_ctx,
        cut_pool: &cut_pool,
        cuts_applied_hint: &cuts_applied_hint,
        root_cuts,
        ckpt: ckpt_rt.as_ref(),
        inc: &inc,
    };

    // --- Search ---
    let root_node = Node {
        changes: Vec::new(),
        bound: root.obj,
        depth: 0,
        warm: Some(Arc::new(root.statuses.clone())),
    };
    let nthreads = cfg.effective_threads();
    let root_djb = (cfg.reduced_cost_fixing && !int_vars.is_empty())
        .then_some((root.dj.as_slice(), root.obj));

    // --- LNS + tabu primal engine ---
    // Destroy units come from the encoder's GUB annotations (route
    // candidate disjunctions, device-placement rows); integer variables
    // outside every group are chunked so the whole space stays reachable.
    let lns_in = (cfg.heuristics.enabled && cfg.heuristics.lns && !int_vars.is_empty())
        .then(|| heur::LnsInput {
            reduced,
            lp: &lp,
            int_vars: &int_vars,
            base_lb: &root_lb,
            base_ub: &root_ub,
            root_x: &root.x,
            root_warm: Some(&root.statuses),
            neighborhoods: heur::build_neighborhoods(&cut_ctx.gub_groups, &int_vars),
            cfg,
            deadline,
        });
    let outcome = run_search_with_lns(
        &ctx,
        vec![root_node],
        root_djb,
        nthreads,
        lns_in,
        &mut stats,
    );

    wrap_up(
        outcome,
        inc,
        &ps,
        cfg,
        &cut_pool,
        ckpt_rt.as_ref(),
        root_cut_bound,
        sign,
        obj_offset,
        start,
        stats,
    )
}

/// Runs the tree search with the LNS engine riding shotgun: in async mode
/// (the default) the engine gets its own scoped thread, publish-only
/// against the shared incumbent, stopped and joined when the exact search
/// finishes; in [`crate::HeurConfig::sync`] mode it runs to completion
/// inline *before* the search, which makes the full engine trace
/// deterministic at any thread count. An engine panic is isolated exactly
/// like a worker panic: counted, and the exact search result stands.
fn run_search_with_lns(
    ctx: &SearchCtx<'_>,
    roots: Vec<Node>,
    root_djb: Option<(&[f64], f64)>,
    nthreads: usize,
    lns_in: Option<heur::LnsInput<'_>>,
    stats: &mut Stats,
) -> SearchOutcome {
    let record = |stats: &mut Stats, l: heur::LnsOutcome| {
        stats.lns_iters += l.iters;
        stats.lns_published += l.published;
        stats.heuristic_solutions += l.published;
        let user = |o: f64| ctx.sign * o + ctx.obj_offset;
        stats.lns_trace = l.trace.iter().map(|&o| user(o)).collect();
    };
    match lns_in {
        Some(lns) if ctx.cfg.heuristics.sync => {
            match catch_unwind(AssertUnwindSafe(|| heur::run_lns(&lns, ctx.inc, None))) {
                Ok(l) => record(stats, l),
                Err(_) => stats.worker_panics += 1,
            }
            run_search(ctx, roots, root_djb, nthreads, stats)
        }
        Some(lns) => {
            let lns_stop = AtomicBool::new(false);
            std::thread::scope(|s| {
                let engine = s.spawn(|| {
                    catch_unwind(AssertUnwindSafe(|| {
                        heur::run_lns(&lns, ctx.inc, Some(&lns_stop))
                    }))
                });
                let outcome = run_search(ctx, roots, root_djb, nthreads, stats);
                lns_stop.store(true, AtomicOrdering::SeqCst);
                match engine.join() {
                    Ok(Ok(l)) => record(stats, l),
                    // Engine panicked (injected or real): the exact search
                    // result stands — the engine only ever publishes, so
                    // losing it costs speed, never correctness.
                    _ => stats.worker_panics += 1,
                }
                outcome
            })
        }
        None => run_search(ctx, roots, root_djb, nthreads, stats),
    }
}

/// Dispatches the tree search, wrapping it with the checkpoint watchdog
/// thread when durable solves are configured. The watchdog runs for the
/// whole search and flushes any pending frame on shutdown, so even a
/// limit-stopped solve leaves its final frame on disk.
fn run_search(
    ctx: &SearchCtx<'_>,
    roots: Vec<Node>,
    root_djb: Option<(&[f64], f64)>,
    nthreads: usize,
    stats: &mut Stats,
) -> SearchOutcome {
    let run = move |stats: &mut Stats| {
        if nthreads <= 1 || ctx.int_vars.is_empty() {
            search_sequential(ctx, roots, root_djb, stats)
        } else {
            // Parallel workers reconstruct bounds from the (already
            // root-fixed) context; incumbent-time refixing is
            // sequential-only.
            search_parallel(ctx, nthreads, roots, stats)
        }
    };
    match ctx.ckpt {
        Some(rt) => std::thread::scope(|s| {
            let wd = s.spawn(|| rt.watchdog());
            let outcome = run(stats);
            rt.shutdown();
            let _ = wd.join();
            outcome
        }),
        None => run(stats),
    }
}

/// Shared wrap-up of both the cold and the resumed solve: cut-pool and
/// checkpoint statistics, bound/status reconciliation, and postsolve of
/// the incumbent back to the original variable space.
#[allow(clippy::too_many_arguments)]
fn wrap_up(
    outcome: SearchOutcome,
    inc: Incumbent,
    ps: &Presolved,
    cfg: &Config,
    cut_pool: &Mutex<cuts::CutPool>,
    ckpt_rt: Option<&CkptRuntime>,
    root_cut_bound: f64,
    sign: f64,
    obj_offset: f64,
    start: Instant,
    mut stats: Stats,
) -> Solution {
    {
        let pool = relock(cut_pool);
        stats.cuts_generated = pool.generated;
        stats.cuts_applied = pool.applied_len();
        stats.cut_rounds = pool.rounds;
    }
    if let Some(rt) = ckpt_rt {
        stats.checkpoint_time = rt.debit();
        stats.checkpoints_written = rt.frames_written();
        stats.stalls_detected = rt.stalls();
    }
    stats.elapsed = start.elapsed();
    let user_obj = |internal: f64| sign * internal + obj_offset;
    // Anytime metrics from the incumbent trace: when the first feasible
    // point landed, and when the incumbent first came within 1% of the
    // final objective (in user space — the headline number of the LNS
    // engine and the `heur_on`/`heur_off` ablation).
    let (incumbent, trace) = inc.into_parts();
    if let Some(&(t, _)) = trace.first() {
        stats.time_to_first_incumbent = Some(Duration::from_secs_f64(t));
    }
    if let Some((obj, _)) = &incumbent {
        let fin = user_obj(*obj);
        let tol = 0.01 * fin.abs().max(1e-10);
        stats.time_to_within_1pct = trace
            .iter()
            .find(|&&(_, o)| (user_obj(o) - fin).abs() <= tol)
            .map(|&(t, _)| Duration::from_secs_f64(t));
    }
    if outcome.unbounded {
        return Solution::unbounded(stats);
    }
    // Subtrees dropped after LP errors count as open: their bound caps the
    // proven bound, and their loss forbids an optimality claim.
    let open_bound = outcome.open_bound.min(outcome.dropped_bound);
    let hit_limit = outcome.hit_limit || outcome.dropped_bound.is_finite();
    match incumbent {
        Some((obj, x)) => {
            let values = ps.postsolve(&x);
            stats.root_gap = ((obj - root_cut_bound) / obj.abs().max(1e-10)).max(0.0);
            let bound_internal = if hit_limit || open_bound.is_finite() {
                open_bound.min(obj)
            } else {
                obj
            };
            let status = if hit_limit
                && (obj - bound_internal > cfg.abs_gap
                    && obj - bound_internal > cfg.rel_gap * obj.abs().max(1e-10))
            {
                Status::LimitFeasible
            } else {
                Status::Optimal
            };
            Solution {
                status,
                objective: user_obj(obj),
                best_bound: user_obj(bound_internal),
                values,
                stats,
                error: None,
            }
        }
        None => {
            if hit_limit {
                Solution {
                    status: Status::LimitNoSolution,
                    objective: f64::INFINITY,
                    best_bound: user_obj(open_bound),
                    values: Vec::new(),
                    stats,
                    error: None,
                }
            } else {
                Solution::infeasible(stats)
            }
        }
    }
}

/// Hash of the base LP (before any pricing or cut appends) plus the root
/// bounds and integrality pattern. Checkpoint frames carry it; resume
/// recomputes it from a fresh encode and refuses frames whose hash
/// differs, so a snapshot can never silently continue a different model.
fn frame_fingerprint(lp: &LpData, root_lb: &[f64], root_ub: &[f64], int_vars: &[usize]) -> u64 {
    let mut w = checkpoint::ByteWriter::new();
    w.put_usize(lp.num_vars());
    w.put_usize(lp.num_rows());
    for &v in &lp.c {
        w.put_f64(v);
    }
    for &v in &lp.row_lb {
        w.put_f64(v);
    }
    for &v in &lp.row_ub {
        w.put_f64(v);
    }
    for &v in root_lb {
        w.put_f64(v);
    }
    for &v in root_ub {
        w.put_f64(v);
    }
    w.put_usize(int_vars.len());
    for &j in int_vars {
        w.put_usize(j);
    }
    checkpoint::fnv1a64(&w.into_bytes())
}

/// A [`FrameNode`] snapshot of one open node (the warm basis is dropped;
/// a resumed node cold-solves once and re-warms its subtree).
fn frame_node(n: &Node) -> FrameNode {
    FrameNode {
        bound: n.bound,
        depth: n.depth,
        changes: n.changes.clone(),
    }
}

/// Assembles a complete [`SearchFrame`] from the runtime's static base
/// plus the dynamic state captured by the caller. The cut pool is read
/// here: its applied list is append-only and globally ordered, so a
/// snapshot taken between a peer's append and its hint publish is still
/// consistent (the restored LP simply catches the extras up lazily).
fn snapshot_frame(
    ctx: &SearchCtx<'_>,
    rt: &CkptRuntime,
    nodes_done: usize,
    base_lb: &[f64],
    base_ub: &[f64],
    open_nodes: Vec<FrameNode>,
) -> SearchFrame {
    let mut frame = rt.base_frame();
    frame.nodes_done = nodes_done;
    // Read the shared incumbent *after* the open set was collected: every
    // pruning decision reflected in that set used an incumbent at least as
    // old as this one, so the frame never pairs a pruned-down tree with a
    // weaker incumbent. LNS publications land here automatically.
    frame.incumbent = ctx.inc.best();
    frame.base_lb = base_lb.to_vec();
    frame.base_ub = base_ub.to_vec();
    frame.cuts = relock(ctx.cut_pool).applied().to_vec();
    frame.root_cuts = ctx.root_cuts;
    frame.open_nodes = open_nodes;
    frame
}

/// Resumes a checkpointed solve from a decoded [`SearchFrame`]: rebuilds
/// the base LP exactly as [`solve_milp_with`] would, verifies the frame's
/// problem fingerprint, replays the accepted pricing batches in order,
/// restores the cut pool and incumbent, and continues the tree search from
/// the frame's open nodes. Resuming from *any* valid frame — even a stale
/// one — yields the same final objective and proof status as an
/// uninterrupted run; staleness only re-does work.
///
/// Fails with [`FrameError::Mismatch`] when the frame does not belong to
/// this problem/configuration pairing; callers typically fall back to a
/// cold solve.
pub fn resume_milp_with(
    problem: &Problem,
    cfg: &Config,
    start: Instant,
    frame: SearchFrame,
    mut columns: Option<&mut dyn ColumnSource>,
) -> Result<Solution, FrameError> {
    let deadline = cfg.time_limit.map(|d| start + d);
    let minimize = problem.sense() == Sense::Minimize;
    let mut stats = Stats {
        resumed: true,
        ..Stats::default()
    };

    // --- Rebuild the base LP exactly as the cold path does ---
    let mut ps: Presolved = if cfg.presolve && columns.is_none() {
        presolve(problem, minimize)
    } else {
        identity_presolved(problem)
    };
    stats.presolve_rows_removed = ps.rows_removed;
    stats.presolve_vars_removed = ps.vars_removed;
    if ps.conclusion.is_some() {
        // The original solve never searched (so never wrote a frame) for a
        // presolve-concluded problem; this frame is someone else's.
        return Err(FrameError::Mismatch("presolve concluded the problem"));
    }
    let n = ps.reduced.num_vars();
    let sign = if minimize { 1.0 } else { -1.0 };
    let c: Vec<f64> = ps.reduced.objective().iter().map(|&v| sign * v).collect();
    let (row_lb, row_ub): (Vec<f64>, Vec<f64>) = ps
        .reduced
        .row_ids()
        .map(|r| ps.reduced.row_bounds(r))
        .unzip();
    let mut lp = LpData {
        a: ps.reduced.matrix(),
        c,
        row_lb,
        row_ub,
    };
    let mut root_lb: Vec<f64> = (0..n).map(|j| ps.reduced.var_bounds(VarId(j)).0).collect();
    let mut root_ub: Vec<f64> = (0..n).map(|j| ps.reduced.var_bounds(VarId(j)).1).collect();
    let mut int_vars: Vec<usize> = (0..n)
        .filter(|&j| ps.reduced.var_type(VarId(j)) != VarType::Continuous)
        .collect();
    let obj_offset = ps.reduced.obj_offset();

    if frame_fingerprint(&lp, &root_lb, &root_ub, &int_vars) != frame.fingerprint {
        return Err(FrameError::Mismatch("problem fingerprint differs"));
    }

    // --- Replay the accepted pricing rounds ---
    // Batch by batch, so side-row column indices (`num_vars + i` within
    // their own round) resolve exactly as they did when first accepted.
    if !frame.batches.is_empty() {
        if columns.is_none() || !cfg.colgen.enabled {
            return Err(FrameError::Mismatch(
                "frame carries priced columns but column generation is off",
            ));
        }
        if !pricing::replay_batches(
            &mut ps,
            &mut lp,
            &mut root_lb,
            &mut root_ub,
            &mut int_vars,
            &frame.batches,
            sign,
        ) {
            return Err(FrameError::Mismatch("pricing batches do not fit the base LP"));
        }
        stats.cols_priced = frame.batches.iter().map(|b| b.cols.len()).sum();
    }
    if let Some(source) = &mut columns {
        source.restore_state(&frame.user_data);
    }

    // --- Base bounds from the frame (they carry root rc-fixing) ---
    if frame.base_lb.len() != root_lb.len() || frame.base_ub.len() != root_ub.len() {
        return Err(FrameError::Mismatch("bound vector length differs"));
    }
    let root_lb = frame.base_lb.clone();
    let root_ub = frame.base_ub.clone();
    let int_vars = int_vars;
    let reduced = &ps.reduced;

    // --- Cut pool restore ---
    // The root prefix is baked back into the base LP; the rest go into the
    // pool only, and every worker catches them up lazily through
    // `sync_cut_lp` — the pool being ahead of a restored LP is the normal,
    // tolerated state of the append-only global order.
    for cut in &frame.cuts {
        if cut.coefs.iter().any(|&(j, _)| j >= lp.num_vars()) {
            return Err(FrameError::Mismatch("cut references an unknown column"));
        }
    }
    let root_rows = cuts::cuts_to_rows(&frame.cuts[..frame.root_cuts]);
    if !root_rows.is_empty() {
        lp.append_rows(&root_rows);
    }
    let cut_ctx = cuts::CutContext::from_problem(reduced);
    let mut pool = cuts::CutPool::new();
    let total_cuts = frame.cuts.len();
    let root_cuts = frame.root_cuts;
    pool.restore_applied(frame.cuts.clone());
    let cuts_applied_hint = AtomicUsize::new(total_cuts);
    let cut_pool = Mutex::new(pool);
    let root_cut_bound = frame.root_bound;

    // --- Incumbent and open nodes ---
    let inc = Incumbent::new(start);
    if let Some((obj, x)) = frame.incumbent.clone() {
        if x.len() != lp.num_vars() {
            return Err(FrameError::Mismatch("incumbent length differs"));
        }
        inc.offer(obj, x);
    }
    if frame
        .open_nodes
        .iter()
        .any(|nd| nd.changes.iter().any(|&(j, _, _)| j >= root_lb.len()))
    {
        return Err(FrameError::Mismatch("node change references an unknown column"));
    }
    // Re-solve the root relaxation once against the restored LP (base
    // columns + replayed pricing + baked root cuts). Frames drop warm
    // bases, but every open node is just a set of bound deltas from this
    // root, so the root basis stays dual-feasible for all of them — one
    // solve here turns thousands of would-be cold node solves back into
    // short dual-simplex reoptimizations. Failure is non-fatal: nodes
    // then cold-solve exactly as before.
    stats.lp_solves += 1;
    let root_res = match solve_lp(&lp, &root_lb, &root_ub, cfg, None, deadline) {
        Ok(r) if r.status == LpStatus::Optimal => {
            stats.simplex_iters += r.iters;
            stats.phase1_iters += r.phase1_iters;
            stats.dual_iters += r.dual_iters;
            Some(r)
        }
        _ => None,
    };
    let root_warm = root_res
        .as_ref()
        .map(|r| Arc::new(r.statuses.clone()));
    let root_djb_owned = root_res
        .as_ref()
        .filter(|_| cfg.reduced_cost_fixing && !int_vars.is_empty())
        .map(|r| (r.dj.clone(), r.obj));

    // Root heuristics, same recipe as a cold solve: the frame's incumbent
    // is whatever the killed run had found by its last snapshot, which can
    // be far from what a fresh root dive reaches in seconds — and the
    // incumbent drives all pruning below. Keep whichever is better.
    if cfg.heuristics.enabled && !int_vars.is_empty() {
        if let Some(root) = &root_res {
            if let Some((obj, x)) = heur::try_rounding(reduced, &lp, &root.x, cfg.int_tol) {
                if inc.offer(obj, x) {
                    stats.heuristic_solutions += 1;
                }
            }
            let root_dive_budget = cfg
                .time_limit
                .map(|t| (t.as_secs_f64() * 0.1).clamp(1.0, 15.0))
                .unwrap_or(15.0);
            for strategy in [
                heur::DiveStrategy::NearestInteger,
                heur::DiveStrategy::MostFractionalUp,
            ] {
                let Some(dd) = dive_window(deadline, root_dive_budget) else {
                    break;
                };
                if let Some((obj, x)) = heur::dive_with(
                    strategy,
                    reduced,
                    &lp,
                    &int_vars,
                    &root_lb,
                    &root_ub,
                    cfg,
                    Some(&root.statuses),
                    Some(dd),
                ) {
                    if inc.offer(obj, x) {
                        stats.heuristic_solutions += 1;
                    }
                }
            }
        }
    }
    let roots: Vec<Node> = frame
        .open_nodes
        .iter()
        .map(|nd| Node {
            changes: nd.changes.clone(),
            bound: nd.bound,
            depth: nd.depth,
            warm: root_warm.clone(),
        })
        .collect();
    stats.nodes = frame.nodes_done;

    // --- Durable-solve runtime (the resumed run checkpoints too) ---
    let ckpt_rt = cfg.checkpoint.as_ref().map(|ck| {
        let base = checkpoint::FrameBase {
            fingerprint: frame.fingerprint,
            root_bound: frame.root_bound,
            base_lb: root_lb.clone(),
            base_ub: root_ub.clone(),
            batches: frame.batches.clone(),
            user_data: frame.user_data.clone(),
        };
        CkptRuntime::new(ck.clone(), base, cfg.faults.clone())
    });

    let ctx = SearchCtx {
        lp: &lp,
        root_lb: &root_lb,
        root_ub: &root_ub,
        int_vars: &int_vars,
        reduced,
        cfg,
        deadline,
        sign,
        obj_offset,
        cut_ctx: &cut_ctx,
        cut_pool: &cut_pool,
        cuts_applied_hint: &cuts_applied_hint,
        root_cuts,
        ckpt: ckpt_rt.as_ref(),
        inc: &inc,
    };

    // --- Search ---
    // Root reduced costs come from the re-solve above (when it succeeded),
    // so incumbent-time refixing keeps working across a resume; without
    // them only pruning strength is lost, never correctness.
    let nthreads = cfg.effective_threads();
    let root_djb = root_djb_owned
        .as_ref()
        .map(|(dj, obj)| (dj.as_slice(), *obj));
    // The LNS engine rides along on a resumed solve exactly as on a cold
    // one; it needs the re-solved root point, so a failed root re-solve
    // just skips it (pruning strength lost, never correctness).
    let lns_in = (cfg.heuristics.enabled && cfg.heuristics.lns && !int_vars.is_empty())
        .then_some(())
        .and(root_res.as_ref())
        .map(|root| heur::LnsInput {
            reduced,
            lp: &lp,
            int_vars: &int_vars,
            base_lb: &root_lb,
            base_ub: &root_ub,
            root_x: &root.x,
            root_warm: Some(&root.statuses),
            neighborhoods: heur::build_neighborhoods(&cut_ctx.gub_groups, &int_vars),
            cfg,
            deadline,
        });
    let outcome = run_search_with_lns(&ctx, roots, root_djb, nthreads, lns_in, &mut stats);

    Ok(wrap_up(
        outcome,
        inc,
        &ps,
        cfg,
        &cut_pool,
        ckpt_rt.as_ref(),
        root_cut_bound,
        sign,
        obj_offset,
        start,
        stats,
    ))
}

/// Pads a warm-start vector produced against an LP with fewer cut rows:
/// every appended cut row contributes one slack, and making those slacks
/// basic keeps the basis square and dual-feasible (see
/// [`LpData::append_rows`]).
fn pad_warm(w: &[VStat], nn_now: usize) -> Vec<VStat> {
    let mut v = Vec::with_capacity(nn_now);
    v.extend_from_slice(w);
    v.resize(nn_now, VStat::Basic);
    v
}

/// The LP a node should be solved against when node cuts are enabled: a
/// worker-local clone of the root LP extended with every cut the shared
/// pool has applied so far. The pool's applied list is append-only and
/// globally ordered, so the local copy catches up by appending the missing
/// suffix — row indices never shift and older warm bases stay valid after
/// [`pad_warm`].
fn sync_cut_lp<'b>(
    ctx: &'b SearchCtx<'_>,
    local_lp: &'b mut Option<LpData>,
    local_cuts: &mut usize,
) -> &'b LpData {
    // Lock-free fast path: the hint is monotone and published (under the
    // pool lock) by whoever applies cuts, so the steady state — no cuts
    // since this worker last caught up — never touches the pool mutex. A
    // stale read only delays the catch-up by one node; the cuts are
    // globally valid either way.
    if ctx.cuts_applied_hint.load(AtomicOrdering::Acquire) > *local_cuts {
        let pool = relock(ctx.cut_pool);
        let total = pool.applied_len();
        // `catch_up_rows` tolerates every relative position the append-only
        // order allows — including a pool already ahead of a restored LP
        // (the resume case) and a stale hint past the pool's length.
        let rows = cuts::catch_up_rows(pool.applied(), *local_cuts);
        drop(pool);
        if !rows.is_empty() {
            let lp = local_lp.get_or_insert_with(|| ctx.lp.clone());
            lp.append_rows(&rows);
            *local_cuts = total;
        }
    }
    match local_lp {
        Some(lp) => lp,
        None => ctx.lp,
    }
}

/// The original single-threaded best-bound-with-plunging loop; this is the
/// exact `threads: 1` behavior. Accepts multiple open roots so the parallel
/// search can hand over its surviving node pool after worker panics.
///
/// `root_info` carries the root reduced costs and root LP bound; when
/// present, every incumbent improvement re-runs reduced-cost fixing against
/// the base bounds all nodes are reconstructed from.
fn search_sequential(
    ctx: &SearchCtx<'_>,
    roots: Vec<Node>,
    root_info: Option<(&[f64], f64)>,
    stats: &mut Stats,
) -> SearchOutcome {
    let cfg = ctx.cfg;
    let mut heap: BinaryHeap<HeapNode> = BinaryHeap::new();
    for root in roots {
        heap.push(HeapNode(root));
    }
    let mut pc = PseudoCosts::new(ctx.root_lb.len());
    // Base bounds shared by every node; tightened further on incumbent
    // improvements via reduced-cost fixing (globally valid because the
    // fixing argument uses the root bound and the global incumbent).
    let mut base_lb = ctx.root_lb.to_vec();
    let mut base_ub = ctx.root_ub.to_vec();
    let mut lb_buf = ctx.root_lb.to_vec();
    let mut ub_buf = ctx.root_ub.to_vec();
    let mut hit_limit = false;
    let mut dropped_bound = f64::INFINITY;
    let mut plunge_next: Option<Node> = None;
    // Adaptive dive throttle: each dive that fails to improve the incumbent
    // doubles the node period before the next one (capped), an improvement
    // resets it — so dives stop eating wall clock once the tree has a good
    // incumbent they cannot beat.
    let mut dive_backoff = 1usize;
    // Node-level cuts (opt-in): local LP copy synced to the shared pool's
    // applied prefix before each node solve.
    let node_cuts = cfg.cuts.enabled && cfg.cuts.node_cuts && !ctx.int_vars.is_empty();
    let mut local_lp: Option<LpData> = None;
    let mut local_cuts = ctx.root_cuts;

    'outer: loop {
        // Global bound = min over open nodes (heap top + any plunge node).
        let open_bound = match (&plunge_next, heap.peek()) {
            (Some(p), Some(h)) => p.bound.min(h.0.bound),
            (Some(p), None) => p.bound,
            (None, Some(h)) => h.0.bound,
            (None, None) => f64::INFINITY,
        };
        // Gap-based termination (the incumbent may have just improved via
        // an LNS publication — the same check picks that up immediately).
        let inc_obj = ctx.inc.bound();
        if inc_obj.is_finite() {
            let gap = inc_obj - open_bound;
            if gap <= cfg.abs_gap || gap <= cfg.rel_gap * inc_obj.abs().max(1e-10) {
                break;
            }
        }
        // Snapshot at the node boundary: nothing is in flight here, so the
        // heap, the plunge slot, and the incumbent are the complete search
        // state.
        if let Some(rt) = ctx.ckpt {
            if rt.take_due() {
                let t0 = Instant::now();
                let open: Vec<FrameNode> = heap
                    .iter()
                    .map(|h| frame_node(&h.0))
                    .chain(plunge_next.as_ref().map(frame_node))
                    .collect();
                let frame = snapshot_frame(ctx, rt, stats.nodes, &base_lb, &base_ub, open);
                rt.offer(frame, t0.elapsed());
            }
        }
        let mut node = match plunge_next.take() {
            Some(nd) => nd,
            None => match heap.pop() {
                Some(HeapNode(nd)) => nd,
                None => break,
            },
        };
        // Prune against the freshest shared incumbent (∞ when none).
        if node.bound >= ctx.inc.bound() - cfg.abs_gap {
            continue;
        }
        // Limits (wall-clock, cancellation, injected expiry, stall abort,
        // node count). The popped node goes back to the plunge slot before
        // the break so the wind-down bound — and any final checkpoint
        // frame — still covers it.
        if ctx.should_stop(stats.nodes) {
            hit_limit = true;
            plunge_next = Some(node);
            break;
        }
        if let Some(nl) = cfg.node_limit {
            if stats.nodes >= nl {
                hit_limit = true;
                plunge_next = Some(node);
                break;
            }
        }
        stats.nodes += 1;
        if let Some(rt) = ctx.ckpt {
            rt.bump_progress();
        }

        // Reconstruct bounds from the (possibly rc-tightened) base bounds.
        lb_buf.copy_from_slice(&base_lb);
        ub_buf.copy_from_slice(&base_ub);
        for &(j, lo, hi) in &node.changes {
            lb_buf[j] = lb_buf[j].max(lo);
            ub_buf[j] = ub_buf[j].min(hi);
        }

        stats.lp_solves += 1;
        let node_lp = if node_cuts {
            sync_cut_lp(ctx, &mut local_lp, &mut local_cuts)
        } else {
            ctx.lp
        };
        let nn_now = node_lp.num_vars() + node_lp.num_rows();
        let padded;
        let warm: Option<&[VStat]> = match node.warm.as_deref() {
            Some(w) if w.len() < nn_now => {
                padded = pad_warm(w, nn_now);
                Some(&padded)
            }
            Some(w) => Some(&w[..]),
            None => None,
        };
        let r = match solve_lp(node_lp, &lb_buf, &ub_buf, cfg, warm, ctx.deadline) {
            Ok(r) => r,
            Err(_) => {
                // Recovery ladder exhausted on this node: drop its subtree
                // but remember its bound so the final status stays honest.
                stats.dropped_nodes += 1;
                dropped_bound = dropped_bound.min(node.bound);
                continue;
            }
        };
        stats.simplex_iters += r.iters;
        stats.phase1_iters += r.phase1_iters;
        stats.dual_iters += r.dual_iters;
        if r.recoveries > 0 {
            stats.lp_recoveries += 1;
        }
        match r.status {
            LpStatus::Infeasible => continue,
            LpStatus::Unbounded => {
                return SearchOutcome {
                    open_bound: f64::NEG_INFINITY,
                    hit_limit: false,
                    unbounded: true,
                    dropped_bound: f64::INFINITY,
                }
            }
            LpStatus::Limit => {
                hit_limit = true;
                plunge_next = Some(node);
                break 'outer;
            }
            LpStatus::Optimal => {}
        }

        if r.obj >= ctx.inc.bound() - cfg.abs_gap {
            continue; // bound-dominated
        }

        match most_fractional(&r.x, &ctx.lp.c, ctx.int_vars, cfg.int_tol) {
            None => {
                // Integral: new incumbent.
                let mut x = r.x.clone();
                for &j in ctx.int_vars {
                    x[j] = x[j].round();
                }
                let obj = ctx.lp.c.iter().zip(&x).map(|(cc, v)| cc * v).sum::<f64>();
                if ctx.inc.offer(obj, x) {
                    if cfg.verbose {
                        eprintln!(
                            "[milp] node {:>6}: incumbent {:.6} (bound {:.6})",
                            stats.nodes,
                            ctx.user_obj(obj),
                            ctx.user_obj(open_bound.min(r.obj))
                        );
                    }
                    if let Some((dj, root_bound)) = root_info {
                        stats.rc_fixed += fix_by_reduced_costs(
                            &mut base_lb,
                            &mut base_ub,
                            dj,
                            ctx.int_vars,
                            root_bound,
                            obj,
                        )
                        .len();
                    }
                }
                continue;
            }
            Some((mf_var, mf_frac)) => {
                // Node-level separation (opt-in): globally valid cover and
                // clique cuts at this node's fractional point, applied to
                // future node solves through the shared pool.
                if node_cuts {
                    let mut pool = relock(ctx.cut_pool);
                    cuts::separate_node(
                        ctx.cut_ctx,
                        &r.x,
                        ctx.root_lb,
                        ctx.root_ub,
                        &mut pool,
                        cfg.cuts.max_cuts_per_round,
                    );
                    let _ = pool.select(&r.x, &cfg.cuts);
                    ctx.cuts_applied_hint
                        .store(pool.applied_len(), AtomicOrdering::Release);
                }
                // Choose branching variable.
                let (bvar, _bfrac) = choose_branch(cfg, &pc, &r.x, ctx.int_vars, mf_var, mf_frac);
                let xval = r.x[bvar];
                let floor = xval.floor();
                // Node-level reduced-cost fixing: this node's reduced costs
                // bound the cost of moving any nonbasic integer off its
                // bound, so against the incumbent the tightening is valid
                // for the whole subtree — record it on the node so both
                // children (and the dive below) inherit it. Fractional
                // variables are basic (dj = 0), so the branch variable is
                // never touched.
                if cfg.reduced_cost_fixing {
                    let inc_obj = ctx.inc.bound();
                    if inc_obj.is_finite() {
                        let fixed = fix_by_reduced_costs(
                            &mut lb_buf,
                            &mut ub_buf,
                            &r.dj,
                            ctx.int_vars,
                            r.obj,
                            inc_obj,
                        );
                        if !fixed.is_empty() {
                            stats.rc_fixed += fixed.len();
                            node.changes.extend_from_slice(&fixed);
                        }
                    }
                }
                let warm = Arc::new(r.statuses);
                // Occasional in-tree diving heuristic; dive more eagerly
                // (and with both strategies) while no incumbent exists, and
                // back off exponentially while dives keep coming up empty.
                let have_inc = ctx.inc.bound().is_finite();
                let dive_period = if have_inc { 64 * dive_backoff } else { 16 };
                if cfg.heuristics.enabled && stats.nodes % dive_period == 1 && stats.nodes > 1 {
                    let mut improved = false;
                    let strategies: &[heur::DiveStrategy] = if have_inc {
                        &[heur::DiveStrategy::NearestInteger]
                    } else {
                        &[
                            heur::DiveStrategy::NearestInteger,
                            heur::DiveStrategy::MostFractionalUp,
                        ]
                    };
                    for &strategy in strategies {
                        let Some(dd) = dive_window(ctx.deadline, 3.0) else {
                            break;
                        };
                        if let Some((obj, x)) = heur::dive_with(
                            strategy,
                            ctx.reduced,
                            node_lp,
                            ctx.int_vars,
                            &lb_buf,
                            &ub_buf,
                            cfg,
                            Some(&warm),
                            Some(dd),
                        ) {
                            if ctx.inc.offer(obj, x) {
                                stats.heuristic_solutions += 1;
                                improved = true;
                                if let Some((dj, root_bound)) = root_info {
                                    stats.rc_fixed += fix_by_reduced_costs(
                                        &mut base_lb,
                                        &mut base_ub,
                                        dj,
                                        ctx.int_vars,
                                        root_bound,
                                        obj,
                                    )
                                    .len();
                                }
                            }
                        }
                    }
                    dive_backoff = if improved { 1 } else { (dive_backoff * 2).min(4) };
                }
                let (down_child, up_child) = make_children(&node, bvar, floor, r.obj, warm);
                // Attribute this node's LP degradation to the parent's
                // branch direction (online pseudo-cost proxy).
                let parent_frac_gain = (r.obj - node.bound).max(0.0);
                if let Some(&(pvar, plo, _phi)) = node.changes.last() {
                    let went_up = plo.is_finite();
                    pc.record(pvar, went_up, parent_frac_gain.max(1e-9));
                }
                match cfg.node_selection {
                    NodeSelection::BestBound => {
                        heap.push(HeapNode(down_child));
                        heap.push(HeapNode(up_child));
                    }
                    NodeSelection::BestBoundPlunge | NodeSelection::DepthFirst => {
                        // plunge into the child nearer the LP value
                        let frac = xval - floor;
                        if frac < 0.5 {
                            plunge_next = Some(down_child);
                            heap.push(HeapNode(up_child));
                        } else {
                            plunge_next = Some(up_child);
                            heap.push(HeapNode(down_child));
                        }
                    }
                }
            }
        }
    }

    let open_bound = match (&plunge_next, heap.peek()) {
        (Some(p), Some(h)) => p.bound.min(h.0.bound),
        (Some(p), None) => p.bound,
        (None, Some(h)) => h.0.bound,
        (None, None) => f64::INFINITY,
    };
    // Limit wind-down: deposit a final frame covering every still-open node
    // (the watchdog's exit drain persists it), so a deadline-expired or
    // stall-aborted solve resumes from exactly where it stopped.
    if hit_limit {
        if let Some(rt) = ctx.ckpt {
            let t0 = Instant::now();
            let open: Vec<FrameNode> = heap
                .iter()
                .map(|h| frame_node(&h.0))
                .chain(plunge_next.as_ref().map(frame_node))
                .collect();
            let frame = snapshot_frame(ctx, rt, stats.nodes, &base_lb, &base_ub, open);
            rt.offer(frame, t0.elapsed());
        }
    }
    SearchOutcome {
        open_bound,
        hit_limit,
        unbounded: false,
        dropped_bound,
    }
}

/// Picks the branching variable per the configured rule.
fn choose_branch(
    cfg: &Config,
    pc: &PseudoCosts,
    x: &[f64],
    int_vars: &[usize],
    mf_var: usize,
    mf_frac: f64,
) -> (usize, f64) {
    match cfg.branching {
        Branching::MostFractional => (mf_var, mf_frac),
        Branching::PseudoCost => {
            let mut best = (mf_var, mf_frac, -1.0f64);
            for &j in int_vars {
                let f = x[j] - x[j].floor();
                if f <= cfg.int_tol || f >= 1.0 - cfg.int_tol {
                    continue;
                }
                let s = if pc.initialized(j) {
                    pc.score(j, f)
                } else {
                    // uninitialized: prefer most fractional
                    0.25 - (f - 0.5) * (f - 0.5)
                };
                if s > best.2 {
                    best = (j, f, s);
                }
            }
            (best.0, best.1)
        }
    }
}

/// Builds the two children of a branch on `bvar` at `floor`.
fn make_children(
    node: &Node,
    bvar: usize,
    floor: f64,
    bound: f64,
    warm: Arc<Vec<VStat>>,
) -> (Node, Node) {
    let down_child = Node {
        changes: {
            let mut ch = node.changes.clone();
            ch.push((bvar, f64::NEG_INFINITY, floor));
            ch
        },
        bound,
        depth: node.depth + 1,
        warm: Some(Arc::clone(&warm)),
    };
    let up_child = Node {
        changes: {
            let mut ch = node.changes.clone();
            ch.push((bvar, floor + 1.0, f64::INFINITY));
            ch
        },
        bound,
        depth: node.depth + 1,
        warm: Some(warm),
    };
    (down_child, up_child)
}

const INF_BITS: u64 = f64::INFINITY.to_bits();

/// State shared by the parallel search workers.
struct ParShared {
    /// Open nodes, best bound on top.
    heap: Mutex<BinaryHeap<HeapNode>>,
    /// Workers currently processing a node (or a plunge chain). The tree is
    /// exhausted exactly when the heap is empty and nobody is active.
    active: AtomicUsize,
    /// Per-worker bound of the node being processed (f64 bits; ∞ = idle).
    /// The global open bound is min(heap top, these slots).
    slots: Vec<AtomicU64>,
    /// All workers drain and exit (gap reached, limit hit, or unbounded).
    stop: AtomicBool,
    hit_limit: AtomicBool,
    unbounded: AtomicBool,
    nodes: AtomicUsize,
    lp_solves: AtomicUsize,
    simplex_iters: AtomicUsize,
    phase1_iters: AtomicUsize,
    dual_iters: AtomicUsize,
    rc_fixed: AtomicUsize,
    heuristic_solutions: AtomicUsize,
    /// A clone of the node each worker is currently processing, so a panic
    /// can re-queue it instead of losing the subtree.
    inflight: Vec<Mutex<Option<Node>>>,
    /// Workers that panicked and were isolated.
    worker_panics: AtomicUsize,
    /// Nodes dropped after unrecoverable LP errors.
    dropped_nodes: AtomicUsize,
    /// Smallest bound among dropped nodes (f64 bits; ∞ = none).
    dropped_bound: AtomicU64,
    /// LP solves that needed at least one recovery rung.
    lp_recoveries: AtomicUsize,
}

impl ParShared {
    /// Pushes an unprocessed node back (worker exiting mid-node).
    fn park_node(&self, node: Node) {
        relock(&self.heap).push(HeapNode(node));
    }

    /// Marks worker `id` idle after it finished (or parked) a node.
    fn release(&self, id: usize) {
        relock(&self.inflight[id]).take();
        self.slots[id].store(INF_BITS, AtomicOrdering::SeqCst);
        self.active.fetch_sub(1, AtomicOrdering::SeqCst);
    }

    /// Records the bound of a node dropped after an unrecoverable LP error.
    fn record_dropped(&self, bound: f64) {
        self.dropped_nodes.fetch_add(1, AtomicOrdering::SeqCst);
        let mut cur = self.dropped_bound.load(AtomicOrdering::SeqCst);
        while bound < f64::from_bits(cur) {
            match self.dropped_bound.compare_exchange(
                cur,
                bound.to_bits(),
                AtomicOrdering::SeqCst,
                AtomicOrdering::SeqCst,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Cleans up after worker `id` unwound from a panic: the in-flight node
    /// (if any) goes back to the pool and the worker's active slot is
    /// surrendered so surviving workers never wait on the dead one.
    fn recover_after_panic(&self, id: usize) {
        self.worker_panics.fetch_add(1, AtomicOrdering::SeqCst);
        let taken = relock(&self.inflight[id]).take();
        if let Some(node) = taken {
            self.park_node(node);
        }
        if self.slots[id].load(AtomicOrdering::SeqCst) != INF_BITS {
            self.release(id);
        }
    }
}

/// Multi-threaded best-bound search over the shared node pool.
fn search_parallel(
    ctx: &SearchCtx<'_>,
    nthreads: usize,
    roots: Vec<Node>,
    stats: &mut Stats,
) -> SearchOutcome {
    let shared = ParShared {
        heap: Mutex::new(BinaryHeap::new()),
        active: AtomicUsize::new(0),
        slots: (0..nthreads).map(|_| AtomicU64::new(INF_BITS)).collect(),
        stop: AtomicBool::new(false),
        hit_limit: AtomicBool::new(false),
        unbounded: AtomicBool::new(false),
        nodes: AtomicUsize::new(stats.nodes),
        lp_solves: AtomicUsize::new(0),
        simplex_iters: AtomicUsize::new(0),
        phase1_iters: AtomicUsize::new(0),
        dual_iters: AtomicUsize::new(0),
        rc_fixed: AtomicUsize::new(0),
        heuristic_solutions: AtomicUsize::new(0),
        inflight: (0..nthreads).map(|_| Mutex::new(None)).collect(),
        worker_panics: AtomicUsize::new(0),
        dropped_nodes: AtomicUsize::new(0),
        dropped_bound: AtomicU64::new(INF_BITS),
        lp_recoveries: AtomicUsize::new(0),
    };
    {
        let mut heap = relock(&shared.heap);
        for root in roots {
            heap.push(HeapNode(root));
        }
    }

    std::thread::scope(|s| {
        for id in 0..nthreads {
            let shared = &shared;
            s.spawn(move || {
                // Isolate panics: a poisoned worker surrenders its node and
                // slot; the survivors keep searching with the incumbent
                // intact. AssertUnwindSafe is justified because every shared
                // structure is either atomic or repaired by relock().
                if catch_unwind(AssertUnwindSafe(|| worker(ctx, shared, id))).is_err() {
                    shared.recover_after_panic(id);
                }
            });
        }
    });

    stats.nodes = shared.nodes.load(AtomicOrdering::SeqCst);
    stats.lp_solves += shared.lp_solves.load(AtomicOrdering::SeqCst);
    stats.simplex_iters += shared.simplex_iters.load(AtomicOrdering::SeqCst);
    stats.phase1_iters += shared.phase1_iters.load(AtomicOrdering::SeqCst);
    stats.dual_iters += shared.dual_iters.load(AtomicOrdering::SeqCst);
    stats.rc_fixed += shared.rc_fixed.load(AtomicOrdering::SeqCst);
    stats.heuristic_solutions += shared.heuristic_solutions.load(AtomicOrdering::SeqCst);
    stats.worker_panics += shared.worker_panics.load(AtomicOrdering::SeqCst);
    stats.dropped_nodes += shared.dropped_nodes.load(AtomicOrdering::SeqCst);
    stats.lp_recoveries += shared.lp_recoveries.load(AtomicOrdering::SeqCst);
    let stopped = shared.stop.load(AtomicOrdering::SeqCst);
    let panics = shared.worker_panics.load(AtomicOrdering::SeqCst);
    let dropped_bound = f64::from_bits(shared.dropped_bound.load(AtomicOrdering::SeqCst));
    let heap = shared
        .heap
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner);

    // Limit wind-down: every worker parked its node before exiting, so the
    // drained heap is the complete open set — deposit it as the final
    // frame for the watchdog's exit drain.
    if shared.hit_limit.load(AtomicOrdering::SeqCst) {
        if let Some(rt) = ctx.ckpt {
            let t0 = Instant::now();
            let open: Vec<FrameNode> = heap.iter().map(|h| frame_node(&h.0)).collect();
            let frame = snapshot_frame(ctx, rt, stats.nodes, ctx.root_lb, ctx.root_ub, open);
            rt.offer(frame, t0.elapsed());
        }
    }

    // Degrade to sequential: if panics killed every worker while open nodes
    // remain (no stop flag, non-empty pool), finish the search single-
    // threaded so the result is still exact.
    if panics > 0 && !stopped && !heap.is_empty() {
        if ctx.cfg.verbose {
            eprintln!(
                "[milp] {} worker(s) panicked with {} open nodes; continuing sequentially",
                panics,
                heap.len()
            );
        }
        let roots: Vec<Node> = heap.into_iter().map(|h| h.0).collect();
        // stats.nodes already carries the parallel phase's count; the
        // sequential loop increments (and checks node_limit against) the
        // cumulative total.
        let mut outcome = search_sequential(ctx, roots, None, stats);
        outcome.dropped_bound = outcome.dropped_bound.min(dropped_bound);
        return outcome;
    }

    SearchOutcome {
        open_bound: heap.peek().map_or(f64::INFINITY, |h| h.0.bound),
        hit_limit: shared.hit_limit.load(AtomicOrdering::SeqCst),
        unbounded: shared.unbounded.load(AtomicOrdering::SeqCst),
        dropped_bound,
    }
}

/// Pops the best open node, waiting while other workers may still produce
/// children. Returns `None` when the search is over (stop flag, gap
/// reached, or tree exhausted). On `Some`, the worker is marked active and
/// its slot carries the node bound.
fn pop_next(ctx: &SearchCtx<'_>, shared: &ParShared, id: usize) -> Option<Node> {
    let cfg = ctx.cfg;
    // Starvation backoff: on an oversubscribed host a tight fixed-period
    // poll steals the core from whichever worker is producing children, so
    // the wait doubles (capped) each empty round and resets on success.
    let mut wait = Duration::from_micros(50);
    loop {
        if shared.stop.load(AtomicOrdering::SeqCst) {
            return None;
        }
        let popped = {
            let mut heap = relock(&shared.heap);
            // Gap-based termination against the global open bound. The slot
            // scan stays inside the lock: claims store their slot under it,
            // so every open node is visible either in the heap or a slot.
            let heap_min = heap.peek().map_or(f64::INFINITY, |h| h.0.bound);
            let slot_min = shared
                .slots
                .iter()
                .map(|s| f64::from_bits(s.load(AtomicOrdering::SeqCst)))
                .fold(f64::INFINITY, f64::min);
            let open_bound = heap_min.min(slot_min);
            let inc_obj = ctx.inc.bound();
            if inc_obj.is_finite() {
                let gap = inc_obj - open_bound;
                if gap <= cfg.abs_gap || gap <= cfg.rel_gap * inc_obj.abs().max(1e-10) {
                    shared.stop.store(true, AtomicOrdering::SeqCst);
                    return None;
                }
            }
            match heap.pop() {
                Some(HeapNode(nd)) => {
                    // Claim under the lock so idle peers never observe an
                    // empty heap with zero active workers mid-handoff, and
                    // so checkpoint snapshots — which read the inflight
                    // slots while holding this same heap lock — always see
                    // the node in the heap or in the slot, never in the gap
                    // between. (Lock order is heap → inflight everywhere.)
                    shared.active.fetch_add(1, AtomicOrdering::SeqCst);
                    shared.slots[id].store(nd.bound.to_bits(), AtomicOrdering::SeqCst);
                    *relock(&shared.inflight[id]) = Some(nd.clone());
                    Some(nd)
                }
                None => {
                    if shared.active.load(AtomicOrdering::SeqCst) == 0 {
                        return None; // tree exhausted
                    }
                    None
                }
            }
        };
        if let Some(nd) = popped {
            return Some(nd);
        }
        // Heap empty but peers are still expanding: wait for children.
        std::thread::sleep(wait);
        wait = (wait * 2).min(Duration::from_millis(1));
    }
}

/// One parallel search worker: pops best-bound nodes, solves their LP
/// relaxations with a private simplex instance, publishes incumbents, and
/// plunges locally like the sequential loop.
fn worker(ctx: &SearchCtx<'_>, shared: &ParShared, id: usize) {
    let cfg = ctx.cfg;
    let mut pc = PseudoCosts::new(ctx.root_lb.len());
    let mut lb_buf = ctx.root_lb.to_vec();
    let mut ub_buf = ctx.root_ub.to_vec();
    let mut plunge_next: Option<Node> = None;
    let mut dive_backoff = 1usize;
    // Node-level cuts (opt-in): worker-local LP copy synced to the shared
    // pool's append-only applied prefix before each node solve.
    let node_cuts = cfg.cuts.enabled && cfg.cuts.node_cuts && !ctx.int_vars.is_empty();
    let mut local_lp: Option<LpData> = None;
    let mut local_cuts = ctx.root_cuts;

    loop {
        let mut node = match plunge_next.take() {
            Some(nd) => {
                if shared.stop.load(AtomicOrdering::SeqCst) {
                    shared.park_node(nd);
                    shared.release(id);
                    break;
                }
                shared.slots[id].store(nd.bound.to_bits(), AtomicOrdering::SeqCst);
                *relock(&shared.inflight[id]) = Some(nd.clone());
                nd
            }
            None => match pop_next(ctx, shared, id) {
                Some(nd) => nd,
                None => break, // idle worker: nothing to release
            },
        };

        // Injected fault: panic exactly here, with the node in flight, so
        // tests prove the recovery path re-queues it.
        if cfg.faults.as_ref().is_some_and(|f| f.should_panic_worker(id)) {
            panic!("injected panic in worker {id}");
        }

        // Snapshot claim: this worker's node already sits in its inflight
        // slot, so heap ∪ inflight covers every open node. The slots are
        // read under the heap lock — claims store them inside `pop_next`'s
        // critical section, and finish paths push children before clearing
        // their slot — so a frame can duplicate a node (harmless: resumed
        // work is re-done) but never lose one (which would be unsound).
        if let Some(rt) = ctx.ckpt {
            if rt.take_due() {
                let t0 = Instant::now();
                let open = {
                    let heap = relock(&shared.heap);
                    let mut open: Vec<FrameNode> =
                        heap.iter().map(|h| frame_node(&h.0)).collect();
                    for slot in &shared.inflight {
                        if let Some(n) = relock(slot).as_ref() {
                            open.push(frame_node(n));
                        }
                    }
                    open
                };
                let frame = snapshot_frame(
                    ctx,
                    rt,
                    shared.nodes.load(AtomicOrdering::SeqCst),
                    ctx.root_lb,
                    ctx.root_ub,
                    open,
                );
                rt.offer(frame, t0.elapsed());
            }
        }

        // Prune against the freshest incumbent.
        if node.bound >= ctx.inc.bound() - cfg.abs_gap {
            shared.release(id);
            continue;
        }
        // Limits (wall-clock, cancellation, injected expiry, node count).
        if ctx.should_stop(shared.nodes.load(AtomicOrdering::SeqCst)) {
            shared.hit_limit.store(true, AtomicOrdering::SeqCst);
            shared.stop.store(true, AtomicOrdering::SeqCst);
            shared.park_node(node);
            shared.release(id);
            break;
        }
        if let Some(nl) = cfg.node_limit {
            if shared.nodes.load(AtomicOrdering::SeqCst) >= nl {
                shared.hit_limit.store(true, AtomicOrdering::SeqCst);
                shared.stop.store(true, AtomicOrdering::SeqCst);
                shared.park_node(node);
                shared.release(id);
                break;
            }
        }
        let node_idx = shared.nodes.fetch_add(1, AtomicOrdering::SeqCst) + 1;
        if let Some(rt) = ctx.ckpt {
            rt.bump_progress();
        }

        // Reconstruct bounds.
        lb_buf.copy_from_slice(ctx.root_lb);
        ub_buf.copy_from_slice(ctx.root_ub);
        for &(j, lo, hi) in &node.changes {
            lb_buf[j] = lb_buf[j].max(lo);
            ub_buf[j] = ub_buf[j].min(hi);
        }

        shared.lp_solves.fetch_add(1, AtomicOrdering::SeqCst);
        let node_lp = if node_cuts {
            sync_cut_lp(ctx, &mut local_lp, &mut local_cuts)
        } else {
            ctx.lp
        };
        let nn_now = node_lp.num_vars() + node_lp.num_rows();
        let padded;
        let warm: Option<&[VStat]> = match node.warm.as_deref() {
            Some(w) if w.len() < nn_now => {
                padded = pad_warm(w, nn_now);
                Some(&padded)
            }
            Some(w) => Some(&w[..]),
            None => None,
        };
        let r = match solve_lp(node_lp, &lb_buf, &ub_buf, cfg, warm, ctx.deadline) {
            Ok(r) => r,
            Err(_) => {
                // Recovery ladder exhausted: drop the subtree, keep its
                // bound so the final status stays honest.
                shared.record_dropped(node.bound);
                shared.release(id);
                continue;
            }
        };
        shared
            .simplex_iters
            .fetch_add(r.iters, AtomicOrdering::SeqCst);
        shared
            .phase1_iters
            .fetch_add(r.phase1_iters, AtomicOrdering::SeqCst);
        shared
            .dual_iters
            .fetch_add(r.dual_iters, AtomicOrdering::SeqCst);
        if r.recoveries > 0 {
            shared.lp_recoveries.fetch_add(1, AtomicOrdering::SeqCst);
        }
        match r.status {
            LpStatus::Infeasible => {
                shared.release(id);
                continue;
            }
            LpStatus::Unbounded => {
                shared.unbounded.store(true, AtomicOrdering::SeqCst);
                shared.stop.store(true, AtomicOrdering::SeqCst);
                shared.release(id);
                break;
            }
            LpStatus::Limit => {
                shared.hit_limit.store(true, AtomicOrdering::SeqCst);
                shared.stop.store(true, AtomicOrdering::SeqCst);
                shared.park_node(node);
                shared.release(id);
                break;
            }
            LpStatus::Optimal => {}
        }
        if r.obj >= ctx.inc.bound() - cfg.abs_gap {
            shared.release(id);
            continue; // bound-dominated
        }

        match most_fractional(&r.x, &ctx.lp.c, ctx.int_vars, cfg.int_tol) {
            None => {
                // Integral: offer as incumbent.
                let mut x = r.x.clone();
                for &j in ctx.int_vars {
                    x[j] = x[j].round();
                }
                let obj = ctx.lp.c.iter().zip(&x).map(|(cc, v)| cc * v).sum::<f64>();
                if ctx.inc.offer(obj, x) && cfg.verbose {
                    eprintln!(
                        "[milp] node {:>6} (worker {}): incumbent {:.6}",
                        node_idx,
                        id,
                        ctx.user_obj(obj)
                    );
                }
                shared.release(id);
                continue;
            }
            Some((mf_var, mf_frac)) => {
                // Node-level separation (opt-in), as in the sequential loop.
                if node_cuts {
                    let mut pool = relock(ctx.cut_pool);
                    cuts::separate_node(
                        ctx.cut_ctx,
                        &r.x,
                        ctx.root_lb,
                        ctx.root_ub,
                        &mut pool,
                        cfg.cuts.max_cuts_per_round,
                    );
                    let _ = pool.select(&r.x, &cfg.cuts);
                    ctx.cuts_applied_hint
                        .store(pool.applied_len(), AtomicOrdering::Release);
                }
                let (bvar, _bfrac) = choose_branch(cfg, &pc, &r.x, ctx.int_vars, mf_var, mf_frac);
                let xval = r.x[bvar];
                let floor = xval.floor();
                // Node-level reduced-cost fixing against a snapshot of the
                // shared incumbent; a stale (worse) bound only under-fixes,
                // so the tightening stays valid under races.
                if cfg.reduced_cost_fixing {
                    let inc = ctx.inc.bound();
                    if inc.is_finite() {
                        let fixed = fix_by_reduced_costs(
                            &mut lb_buf,
                            &mut ub_buf,
                            &r.dj,
                            ctx.int_vars,
                            r.obj,
                            inc,
                        );
                        if !fixed.is_empty() {
                            shared.rc_fixed.fetch_add(fixed.len(), AtomicOrdering::SeqCst);
                            node.changes.extend_from_slice(&fixed);
                        }
                    }
                }
                let warm = Arc::new(r.statuses);
                let have_inc = ctx.inc.bound().is_finite();
                // Same adaptive throttle as the sequential search, tracked
                // per worker: empty dives double the period, a success
                // resets it.
                let dive_period = if have_inc { 64 * dive_backoff } else { 16 };
                if cfg.heuristics.enabled && node_idx % dive_period == 1 && node_idx > 1 {
                    let mut improved = false;
                    let strategies: &[heur::DiveStrategy] = if have_inc {
                        &[heur::DiveStrategy::NearestInteger]
                    } else {
                        &[
                            heur::DiveStrategy::NearestInteger,
                            heur::DiveStrategy::MostFractionalUp,
                        ]
                    };
                    for &strategy in strategies {
                        let Some(dd) = dive_window(ctx.deadline, 3.0) else {
                            break;
                        };
                        if let Some((obj, x)) = heur::dive_with(
                            strategy,
                            ctx.reduced,
                            node_lp,
                            ctx.int_vars,
                            &lb_buf,
                            &ub_buf,
                            cfg,
                            Some(&warm),
                            Some(dd),
                        ) {
                            if ctx.inc.offer(obj, x) {
                                shared
                                    .heuristic_solutions
                                    .fetch_add(1, AtomicOrdering::SeqCst);
                                improved = true;
                            }
                        }
                    }
                    dive_backoff = if improved { 1 } else { (dive_backoff * 2).min(4) };
                }
                let (down_child, up_child) = make_children(&node, bvar, floor, r.obj, warm);
                let parent_frac_gain = (r.obj - node.bound).max(0.0);
                if let Some(&(pvar, plo, _phi)) = node.changes.last() {
                    let went_up = plo.is_finite();
                    pc.record(pvar, went_up, parent_frac_gain.max(1e-9));
                }
                match cfg.node_selection {
                    NodeSelection::BestBound => {
                        let mut heap = relock(&shared.heap);
                        heap.push(HeapNode(down_child));
                        heap.push(HeapNode(up_child));
                        drop(heap);
                        shared.release(id);
                    }
                    NodeSelection::BestBoundPlunge | NodeSelection::DepthFirst => {
                        // plunge into the child nearer the LP value; the
                        // sibling goes to the shared pool for any worker
                        let frac = xval - floor;
                        let (keep, push) = if frac < 0.5 {
                            (down_child, up_child)
                        } else {
                            (up_child, down_child)
                        };
                        relock(&shared.heap).push(HeapNode(push));
                        plunge_next = Some(keep);
                        // stays active; the slot is refreshed at loop top
                    }
                }
            }
        }
    }
}

/// Builds a no-op [`Presolved`] for when presolve is disabled.
fn identity_presolved(problem: &Problem) -> Presolved {
    // Delegate to the presolver with zero rounds by constructing directly.
    // A clean way without exposing internals: run presolve on a clone is not
    // a no-op, so we build the identity mapping by hand via public behavior:
    // `presolve` with zero reductions isn't available, so replicate the
    // structure with an exact copy.
    Presolved::identity(problem)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Row, Var};

    fn cfg() -> Config {
        Config::default()
    }

    #[test]
    fn most_fractional_breaks_ties_by_objective_magnitude() {
        // Both variables sit exactly at 0.5; the larger |c| must win.
        let x = [0.5, 0.5];
        let c = [1.0, -3.0];
        let got = most_fractional(&x, &c, &[0, 1], 1e-6);
        assert_eq!(got, Some((1, 0.5)));
        // Equal magnitudes: the lower index wins for determinism.
        let c_eq = [2.0, -2.0];
        let got = most_fractional(&x, &c_eq, &[0, 1], 1e-6);
        assert_eq!(got, Some((0, 0.5)));
        // No tie: fractionality still dominates the coefficient.
        let x2 = [0.5, 0.9];
        let got = most_fractional(&x2, &c, &[0, 1], 1e-6);
        assert_eq!(got, Some((0, 0.5)));
    }

    #[test]
    fn reduced_cost_fixing_tightens_and_respects_gap() {
        // gap = 10 - 8 = 2; d = 3 allows floor((2+eps)/3) = 0 above lb.
        let mut lb = vec![0.0, 0.0, 0.0];
        let mut ub = vec![10.0, 10.0, 10.0];
        let dj = [3.0, -3.0, 0.1];
        let fixed = fix_by_reduced_costs(&mut lb, &mut ub, &dj, &[0, 1, 2], 8.0, 10.0);
        assert_eq!(fixed.len(), 2);
        assert_eq!(ub[0], 0.0); // at-lower var pinned to its bound
        assert_eq!(lb[1], 10.0); // at-upper var pinned to its bound
        assert_eq!((lb[2], ub[2]), (0.0, 10.0)); // small |d|: gap/d >= span
        // The returned tightenings mirror the in-place updates, one-sided.
        assert_eq!(fixed[0], (0, f64::NEG_INFINITY, 0.0));
        assert_eq!(fixed[1], (1, 10.0, f64::INFINITY));
        // Infinite gap (no incumbent bound) must never fix anything.
        let mut lb2 = vec![0.0];
        let mut ub2 = vec![1.0];
        assert!(
            fix_by_reduced_costs(&mut lb2, &mut ub2, &[5.0], &[0], f64::NEG_INFINITY, 1.0)
                .is_empty()
        );
    }

    #[test]
    fn pure_lp_minimize() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var(Var::cont().bounds(0.0, 10.0).obj(2.0));
        let y = p.add_var(Var::cont().bounds(0.0, 10.0).obj(3.0));
        p.add_row(Row::new().coef(x, 1.0).coef(y, 1.0).ge(4.0));
        let s = solve_milp(&p, &cfg(), Instant::now());
        assert_eq!(s.status(), Status::Optimal);
        assert!((s.objective() - 8.0).abs() < 1e-6, "obj {}", s.objective());
        assert!((s.value(x) - 4.0).abs() < 1e-6);
    }

    #[test]
    fn pure_lp_maximize() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var(Var::cont().bounds(0.0, 4.0).obj(3.0));
        let y = p.add_var(Var::cont().bounds(0.0, 4.0).obj(2.0));
        p.add_row(Row::new().coef(x, 1.0).coef(y, 1.0).le(5.0));
        let s = solve_milp(&p, &cfg(), Instant::now());
        assert_eq!(s.status(), Status::Optimal);
        assert!((s.objective() - 14.0).abs() < 1e-6, "obj {}", s.objective());
    }

    #[test]
    fn small_knapsack() {
        // max 8x + 11y + 6z + 4w, 5x + 7y + 4z + 3w <= 14, binary
        // optimum: y + z + w = 21 weight 14
        let mut p = Problem::new(Sense::Maximize);
        let vals = [8.0, 11.0, 6.0, 4.0];
        let wts = [5.0, 7.0, 4.0, 3.0];
        let vars: Vec<VarId> = vals
            .iter()
            .map(|&v| p.add_var(Var::binary().obj(v)))
            .collect();
        let mut row = Row::new().le(14.0);
        for (v, &w) in vars.iter().zip(&wts) {
            row = row.coef(*v, w);
        }
        p.add_row(row);
        let s = solve_milp(&p, &cfg(), Instant::now());
        assert_eq!(s.status(), Status::Optimal);
        assert!((s.objective() - 21.0).abs() < 1e-6, "obj {}", s.objective());
        assert!(!s.is_one(vars[0]));
        assert!(s.is_one(vars[1]) && s.is_one(vars[2]) && s.is_one(vars[3]));
    }

    #[test]
    fn integer_rounding_matters() {
        // max x + y s.t. 2x + 2y <= 3, integer -> optimum 1 (not 1.5)
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var(Var::integer().bounds(0.0, 5.0).obj(1.0));
        let y = p.add_var(Var::integer().bounds(0.0, 5.0).obj(1.0));
        p.add_row(Row::new().coef(x, 2.0).coef(y, 2.0).le(3.0));
        let s = solve_milp(&p, &cfg(), Instant::now());
        assert_eq!(s.status(), Status::Optimal);
        assert!((s.objective() - 1.0).abs() < 1e-6, "obj {}", s.objective());
    }

    #[test]
    fn infeasible_milp() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var(Var::binary().obj(1.0));
        let y = p.add_var(Var::binary().obj(1.0));
        p.add_row(Row::new().coef(x, 1.0).coef(y, 1.0).ge(3.0));
        let s = solve_milp(&p, &cfg(), Instant::now());
        assert_eq!(s.status(), Status::Infeasible);
    }

    #[test]
    fn equality_partition() {
        // choose exactly one of three options with different costs
        let mut p = Problem::new(Sense::Minimize);
        let a = p.add_var(Var::binary().obj(5.0));
        let b = p.add_var(Var::binary().obj(3.0));
        let c = p.add_var(Var::binary().obj(7.0));
        p.add_row(Row::new().coef(a, 1.0).coef(b, 1.0).coef(c, 1.0).eq(1.0));
        let s = solve_milp(&p, &cfg(), Instant::now());
        assert_eq!(s.status(), Status::Optimal);
        assert!((s.objective() - 3.0).abs() < 1e-6);
        assert!(s.is_one(b));
    }

    #[test]
    fn node_limit_reports_limit_status() {
        // a knapsack too hard for 1 node without heuristics
        let mut p = Problem::new(Sense::Maximize);
        let n = 12;
        let mut row = Row::new().le(17.0);
        for i in 0..n {
            let v = p.add_var(Var::binary().obj(3.0 + (i as f64 % 5.0)));
            row = row.coef(v, 2.0 + (i as f64 % 3.0));
        }
        p.add_row(row);
        let mut c = cfg().with_node_limit(1).with_heuristics(false);
        c.presolve = false;
        let s = solve_milp(&p, &c, Instant::now());
        assert!(matches!(
            s.status(),
            Status::LimitFeasible | Status::LimitNoSolution | Status::Optimal
        ));
    }

    #[test]
    fn objective_offset_respected() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var(Var::cont().bounds(1.0, 2.0).obj(1.0));
        p.add_row(Row::new().coef(x, 1.0).ge(1.0));
        p.shift_objective(100.0);
        let s = solve_milp(&p, &cfg(), Instant::now());
        assert_eq!(s.status(), Status::Optimal);
        assert!((s.objective() - 101.0).abs() < 1e-6, "obj {}", s.objective());
    }

    /// Builds a moderately hard knapsack-style MILP for the thread tests.
    fn hard_knapsack(n: usize) -> Problem {
        let mut p = Problem::new(Sense::Maximize);
        let mut row = Row::new().le((2 * n) as f64 * 0.6);
        for i in 0..n {
            let v = p.add_var(Var::binary().obj(1.0 + ((i * 31) % 11) as f64 / 3.0));
            row = row.coef(v, 1.0 + ((i * 17) % 7) as f64 / 2.0);
        }
        p.add_row(row);
        p
    }

    #[test]
    fn parallel_agrees_with_sequential_objective() {
        for n in [10usize, 16, 22] {
            let p = hard_knapsack(n);
            let seq = solve_milp(&p, &cfg(), Instant::now());
            assert_eq!(seq.status(), Status::Optimal);
            for threads in [2usize, 4, 8] {
                let c = cfg().with_threads(threads);
                let par = solve_milp(&p, &c, Instant::now());
                assert_eq!(par.status(), Status::Optimal, "threads = {threads}");
                assert!(
                    (par.objective() - seq.objective()).abs() < 1e-6,
                    "threads {}: {} vs {}",
                    threads,
                    par.objective(),
                    seq.objective()
                );
                // the reported vector must itself be feasible and integral
                assert!(p.check_feasible(par.values(), 1e-6).is_none());
            }
        }
    }

    #[test]
    fn parallel_infeasible_detected() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var(Var::binary().obj(1.0));
        let y = p.add_var(Var::binary().obj(1.0));
        p.add_row(Row::new().coef(x, 1.0).coef(y, 1.0).ge(3.0));
        let s = solve_milp(&p, &cfg().with_threads(4), Instant::now());
        assert_eq!(s.status(), Status::Infeasible);
    }

    #[test]
    fn parallel_respects_node_limit() {
        let p = hard_knapsack(12);
        let mut c = cfg().with_node_limit(1).with_heuristics(false).with_threads(4);
        c.presolve = false;
        let s = solve_milp(&p, &c, Instant::now());
        assert!(matches!(
            s.status(),
            Status::LimitFeasible | Status::LimitNoSolution | Status::Optimal
        ));
    }

    #[test]
    fn parallel_pure_best_bound_selection() {
        let p = hard_knapsack(14);
        let mut c = cfg().with_threads(3);
        c.node_selection = NodeSelection::BestBound;
        let s = solve_milp(&p, &c, Instant::now());
        let seq = solve_milp(&p, &cfg(), Instant::now());
        assert_eq!(s.status(), Status::Optimal);
        assert!((s.objective() - seq.objective()).abs() < 1e-6);
    }
}
