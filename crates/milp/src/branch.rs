//! LP-based branch and bound.
//!
//! The driver presolves the problem, builds the computational LP form once,
//! and explores a tree of bound-tightened LP relaxations. Nodes carry their
//! bound *deltas* from the root plus a shared warm-start basis, so node
//! storage stays small. Node selection is best-bound with depth-first
//! plunging by default; branching uses pseudo-costs with a most-fractional
//! fallback.

use crate::config::{Branching, Config, NodeSelection};
use crate::heur;
use crate::presolve::{presolve, Presolved};
use crate::problem::{Problem, Sense, VarId, VarType};
use crate::simplex::{solve_lp, LpData, LpStatus, VStat};
use crate::solution::{Solution, Stats, Status};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::rc::Rc;
use std::time::Instant;

/// One open node: bound changes relative to the root plus bookkeeping.
struct Node {
    /// `(var, new_lb, new_ub)` tightenings along the path from the root.
    changes: Vec<(usize, f64, f64)>,
    /// LP bound inherited from the parent (internal minimize sense).
    bound: f64,
    depth: usize,
    /// Warm-start statuses shared with the sibling.
    warm: Option<Rc<Vec<VStat>>>,
}

/// Max-heap adapter: we want the node with the *smallest* bound on top.
struct HeapNode(Node);

impl PartialEq for HeapNode {
    fn eq(&self, other: &Self) -> bool {
        self.0.bound == other.0.bound
    }
}
impl Eq for HeapNode {}
impl PartialOrd for HeapNode {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapNode {
    fn cmp(&self, other: &Self) -> Ordering {
        // reversed: smaller bound = greater priority
        other
            .0
            .bound
            .partial_cmp(&self.0.bound)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.0.depth.cmp(&self.0.depth))
    }
}

/// Per-variable pseudo-cost records.
struct PseudoCosts {
    up_sum: Vec<f64>,
    up_cnt: Vec<usize>,
    down_sum: Vec<f64>,
    down_cnt: Vec<usize>,
}

impl PseudoCosts {
    fn new(n: usize) -> Self {
        PseudoCosts {
            up_sum: vec![0.0; n],
            up_cnt: vec![0; n],
            down_sum: vec![0.0; n],
            down_cnt: vec![0; n],
        }
    }

    fn record(&mut self, var: usize, up: bool, degradation_per_frac: f64) {
        let d = degradation_per_frac.max(0.0);
        if up {
            self.up_sum[var] += d;
            self.up_cnt[var] += 1;
        } else {
            self.down_sum[var] += d;
            self.down_cnt[var] += 1;
        }
    }

    fn score(&self, var: usize, frac: f64) -> f64 {
        let eps = 1e-6;
        let up = if self.up_cnt[var] > 0 {
            self.up_sum[var] / self.up_cnt[var] as f64
        } else {
            1.0
        };
        let down = if self.down_cnt[var] > 0 {
            self.down_sum[var] / self.down_cnt[var] as f64
        } else {
            1.0
        };
        (up * (1.0 - frac)).max(eps) * (down * frac).max(eps)
    }

    fn initialized(&self, var: usize) -> bool {
        self.up_cnt[var] > 0 || self.down_cnt[var] > 0
    }
}

/// Solves `problem` by presolve + branch and bound. `start` anchors the time
/// limit. Called through [`crate::Solver::solve`].
pub fn solve_milp(problem: &Problem, cfg: &Config, start: Instant) -> Solution {
    let deadline = cfg.time_limit.map(|d| start + d);
    let minimize = problem.sense() == Sense::Minimize;
    let mut stats = Stats::default();

    // --- Presolve ---
    let ps: Presolved = if cfg.presolve {
        presolve(problem, minimize)
    } else {
        identity_presolved(problem)
    };
    stats.presolve_rows_removed = ps.rows_removed;
    stats.presolve_vars_removed = ps.vars_removed;
    if let Some(conclusion) = ps.conclusion {
        stats.elapsed = start.elapsed();
        return match conclusion {
            Status::Infeasible => Solution::infeasible(stats),
            Status::Unbounded => Solution::unbounded(stats),
            _ => unreachable!("presolve only concludes infeasible/unbounded"),
        };
    }
    let reduced = &ps.reduced;

    // --- Build internal (minimize) LP form ---
    let n = reduced.num_vars();
    let sign = if minimize { 1.0 } else { -1.0 };
    let c: Vec<f64> = reduced.objective().iter().map(|&v| sign * v).collect();
    let (row_lb, row_ub): (Vec<f64>, Vec<f64>) =
        reduced.row_ids().map(|r| reduced.row_bounds(r)).unzip();
    let lp = LpData {
        a: reduced.matrix(),
        c,
        row_lb,
        row_ub,
    };
    let root_lb: Vec<f64> = (0..n).map(|j| reduced.var_bounds(VarId(j)).0).collect();
    let root_ub: Vec<f64> = (0..n).map(|j| reduced.var_bounds(VarId(j)).1).collect();
    let int_vars: Vec<usize> = (0..n)
        .filter(|&j| reduced.var_type(VarId(j)) != VarType::Continuous)
        .collect();

    // Finishing helper: translate internal objective to user sense.
    let user_obj = |internal: f64| sign * internal + reduced.obj_offset();

    // --- Root LP ---
    stats.lp_solves += 1;
    let root = solve_lp(&lp, &root_lb, &root_ub, cfg, None, deadline);
    stats.simplex_iters += root.iters;
    match root.status {
        LpStatus::Infeasible => {
            stats.nodes = 1;
            stats.elapsed = start.elapsed();
            return Solution::infeasible(stats);
        }
        LpStatus::Unbounded => {
            stats.nodes = 1;
            stats.elapsed = start.elapsed();
            return Solution::unbounded(stats);
        }
        LpStatus::Limit => {
            stats.nodes = 1;
            stats.elapsed = start.elapsed();
            return Solution {
                status: Status::LimitNoSolution,
                objective: f64::INFINITY,
                best_bound: user_obj(f64::NEG_INFINITY),
                values: Vec::new(),
                stats,
            };
        }
        LpStatus::Optimal => {}
    }

    // --- Incumbent state (internal minimize sense) ---
    let mut incumbent: Option<(f64, Vec<f64>)> = None;
    let mut pc = PseudoCosts::new(n);
    let frac_of = |x: &[f64]| -> Option<(usize, f64)> {
        // most fractional integer variable
        let mut best: Option<(usize, f64, f64)> = None;
        for &j in &int_vars {
            let f = x[j] - x[j].floor();
            let dist = (f - 0.5).abs();
            if f > cfg.int_tol && f < 1.0 - cfg.int_tol
                && best.map_or(true, |(_, _, d)| dist < d)
            {
                best = Some((j, f, dist));
            }
        }
        best.map(|(j, f, _)| (j, f))
    };

    // Heuristic time slices: dives must never eat the search budget. Each
    // dive gets a bounded window; the global deadline still dominates.
    let dive_deadline = |frac_secs: f64| -> Option<Instant> {
        let local = Instant::now() + std::time::Duration::from_secs_f64(frac_secs);
        Some(match deadline {
            Some(d) => d.min(local),
            None => local,
        })
    };

    // Root heuristics.
    if cfg.heuristics && !int_vars.is_empty() {
        if let Some((obj, x)) = heur::try_rounding(reduced, &lp, &root.x, cfg.int_tol) {
            incumbent = Some((obj, x));
            stats.heuristic_solutions += 1;
        }
        let root_dive_budget = cfg
            .time_limit
            .map(|t| (t.as_secs_f64() * 0.1).clamp(1.0, 15.0))
            .unwrap_or(15.0);
        for strategy in [
            heur::DiveStrategy::NearestInteger,
            heur::DiveStrategy::MostFractionalUp,
        ] {
            if let Some((obj, x)) = heur::dive_with(
                strategy,
                reduced,
                &lp,
                &int_vars,
                &root_lb,
                &root_ub,
                cfg,
                Some(&root.statuses),
                dive_deadline(root_dive_budget),
            ) {
                if incumbent.as_ref().map_or(true, |(o, _)| obj < *o) {
                    incumbent = Some((obj, x));
                    stats.heuristic_solutions += 1;
                }
            }
        }
    }

    // --- Search ---
    let mut heap: BinaryHeap<HeapNode> = BinaryHeap::new();
    let root_warm = Rc::new(root.statuses.clone());
    heap.push(HeapNode(Node {
        changes: Vec::new(),
        bound: root.obj,
        depth: 0,
        warm: Some(root_warm),
    }));
    let mut lb_buf = root_lb.clone();
    let mut ub_buf = root_ub.clone();
    let mut hit_limit = false;
    let mut plunge_next: Option<Node> = None;

    'outer: loop {
        // Global bound = min over open nodes (heap top + any plunge node).
        let open_bound = match (&plunge_next, heap.peek()) {
            (Some(p), Some(h)) => p.bound.min(h.0.bound),
            (Some(p), None) => p.bound,
            (None, Some(h)) => h.0.bound,
            (None, None) => f64::INFINITY,
        };
        // Gap-based termination.
        if let Some((inc_obj, _)) = &incumbent {
            let gap = inc_obj - open_bound;
            if gap <= cfg.abs_gap || gap <= cfg.rel_gap * inc_obj.abs().max(1e-10) {
                break;
            }
        }
        let node = match plunge_next.take() {
            Some(nd) => nd,
            None => match heap.pop() {
                Some(HeapNode(nd)) => nd,
                None => break,
            },
        };
        // Prune against incumbent.
        if let Some((inc_obj, _)) = &incumbent {
            if node.bound >= *inc_obj - cfg.abs_gap {
                continue;
            }
        }
        // Limits.
        if deadline.is_some_and(|d| Instant::now() >= d) {
            hit_limit = true;
            break;
        }
        if let Some(nl) = cfg.node_limit {
            if stats.nodes >= nl {
                hit_limit = true;
                break;
            }
        }
        stats.nodes += 1;

        // Reconstruct bounds.
        lb_buf.copy_from_slice(&root_lb);
        ub_buf.copy_from_slice(&root_ub);
        for &(j, lo, hi) in &node.changes {
            lb_buf[j] = lb_buf[j].max(lo);
            ub_buf[j] = ub_buf[j].min(hi);
        }

        stats.lp_solves += 1;
        let r = solve_lp(&lp, &lb_buf, &ub_buf, cfg, node.warm.as_deref().map(|v| &v[..]), deadline);
        stats.simplex_iters += r.iters;
        match r.status {
            LpStatus::Infeasible => continue,
            LpStatus::Unbounded => {
                // only possible if the root was unbounded; defensive
                stats.elapsed = start.elapsed();
                return Solution::unbounded(stats);
            }
            LpStatus::Limit => {
                hit_limit = true;
                break 'outer;
            }
            LpStatus::Optimal => {}
        }
        // Record pseudo-cost from the branch that created this node.
        // (handled at child creation below via closure over parent info)

        if let Some((inc_obj, _)) = &incumbent {
            if r.obj >= *inc_obj - cfg.abs_gap {
                continue; // bound-dominated
            }
        }

        match frac_of(&r.x) {
            None => {
                // Integral: new incumbent.
                let mut x = r.x.clone();
                for &j in &int_vars {
                    x[j] = x[j].round();
                }
                let obj = lp.c.iter().zip(&x).map(|(cc, v)| cc * v).sum::<f64>();
                if incumbent.as_ref().map_or(true, |(o, _)| obj < *o) {
                    if cfg.verbose {
                        eprintln!(
                            "[milp] node {:>6}: incumbent {:.6} (bound {:.6})",
                            stats.nodes,
                            user_obj(obj),
                            user_obj(open_bound.min(r.obj))
                        );
                    }
                    incumbent = Some((obj, x));
                }
                continue;
            }
            Some((mf_var, mf_frac)) => {
                // Choose branching variable.
                let (bvar, bfrac) = match cfg.branching {
                    Branching::MostFractional => (mf_var, mf_frac),
                    Branching::PseudoCost => {
                        let mut best = (mf_var, mf_frac, -1.0f64);
                        for &j in &int_vars {
                            let f = r.x[j] - r.x[j].floor();
                            if f <= cfg.int_tol || f >= 1.0 - cfg.int_tol {
                                continue;
                            }
                            let s = if pc.initialized(j) {
                                pc.score(j, f)
                            } else {
                                // uninitialized: prefer most fractional
                                0.25 - (f - 0.5) * (f - 0.5)
                            };
                            if s > best.2 {
                                best = (j, f, s);
                            }
                        }
                        (best.0, best.1)
                    }
                };
                let xval = r.x[bvar];
                let floor = xval.floor();
                let warm = Rc::new(r.statuses);
                // Occasional in-tree diving heuristic; dive more eagerly
                // (and with both strategies) while no incumbent exists.
                let dive_period = if incumbent.is_some() { 64 } else { 16 };
                if cfg.heuristics && stats.nodes % dive_period == 1 && stats.nodes > 1 {
                    let strategies: &[heur::DiveStrategy] = if incumbent.is_some() {
                        &[heur::DiveStrategy::NearestInteger]
                    } else {
                        &[
                            heur::DiveStrategy::NearestInteger,
                            heur::DiveStrategy::MostFractionalUp,
                        ]
                    };
                    for &strategy in strategies {
                        if let Some((obj, x)) = heur::dive_with(
                            strategy, reduced, &lp, &int_vars, &lb_buf, &ub_buf, cfg,
                            Some(&warm), dive_deadline(3.0),
                        ) {
                            if incumbent.as_ref().map_or(true, |(o, _)| obj < *o) {
                                incumbent = Some((obj, x));
                                stats.heuristic_solutions += 1;
                            }
                        }
                    }
                }
                // Update pseudo-costs lazily using LP objective improvements:
                // the degradation estimate for this node's own branch was
                // recorded when the node was created; here we record for
                // children when they are solved (approximated by recording
                // parent->child delta at child solve time). To keep the
                // implementation simple we record at child creation using the
                // parent LP objective and the eventual child bound when the
                // child is processed; instead, we use the standard proxy of
                // objective increase per unit fractionality measured on the
                // two children's LPs when they are popped. The proxy here:
                // attribute the current node's (bound - parent bound) to the
                // branch variable of the parent -- tracked via `changes`.
                let down_child = Node {
                    changes: {
                        let mut ch = node.changes.clone();
                        ch.push((bvar, f64::NEG_INFINITY, floor));
                        ch
                    },
                    bound: r.obj,
                    depth: node.depth + 1,
                    warm: Some(Rc::clone(&warm)),
                };
                let up_child = Node {
                    changes: {
                        let mut ch = node.changes.clone();
                        ch.push((bvar, floor + 1.0, f64::INFINITY));
                        ch
                    },
                    bound: r.obj,
                    depth: node.depth + 1,
                    warm: Some(warm),
                };
                // Record pseudo-cost samples by solving proxy: use fractional
                // distance as denominator when the child is eventually solved.
                // Simplified online update: estimate from the LP objective of
                // this node vs parent bound.
                let parent_frac_gain = (r.obj - node.bound).max(0.0);
                if let Some(&(pvar, plo, _phi)) = node.changes.last() {
                    // the last change identifies the parent's branch direction
                    let went_up = plo.is_finite();
                    pc.record(pvar, went_up, parent_frac_gain.max(1e-9));
                }
                let _ = bfrac;
                match cfg.node_selection {
                    NodeSelection::BestBound => {
                        heap.push(HeapNode(down_child));
                        heap.push(HeapNode(up_child));
                    }
                    NodeSelection::BestBoundPlunge | NodeSelection::DepthFirst => {
                        // plunge into the child nearer the LP value
                        let frac = xval - floor;
                        if frac < 0.5 {
                            plunge_next = Some(down_child);
                            heap.push(HeapNode(up_child));
                        } else {
                            plunge_next = Some(up_child);
                            heap.push(HeapNode(down_child));
                        }
                    }
                }
            }
        }
    }

    // --- Wrap up ---
    let open_bound = match (&plunge_next, heap.peek()) {
        (Some(p), Some(h)) => p.bound.min(h.0.bound),
        (Some(p), None) => p.bound,
        (None, Some(h)) => h.0.bound,
        (None, None) => f64::INFINITY,
    };
    stats.elapsed = start.elapsed();
    match incumbent {
        Some((obj, x)) => {
            let values = ps.postsolve(&x);
            let bound_internal = if hit_limit || !heap.is_empty() || plunge_next.is_some() {
                open_bound.min(obj)
            } else {
                obj
            };
            let status = if hit_limit
                && (obj - bound_internal > cfg.abs_gap
                    && obj - bound_internal > cfg.rel_gap * obj.abs().max(1e-10))
            {
                Status::LimitFeasible
            } else {
                Status::Optimal
            };
            Solution {
                status,
                objective: user_obj(obj),
                best_bound: user_obj(bound_internal),
                values,
                stats,
            }
        }
        None => {
            if hit_limit {
                Solution {
                    status: Status::LimitNoSolution,
                    objective: f64::INFINITY,
                    best_bound: user_obj(open_bound),
                    values: Vec::new(),
                    stats,
                }
            } else {
                Solution::infeasible(stats)
            }
        }
    }
}

/// Builds a no-op [`Presolved`] for when presolve is disabled.
fn identity_presolved(problem: &Problem) -> Presolved {
    // Delegate to the presolver with zero rounds by constructing directly.
    // A clean way without exposing internals: run presolve on a clone is not
    // a no-op, so we build the identity mapping by hand via public behavior:
    // `presolve` with zero reductions isn't available, so replicate the
    // structure with an exact copy.
    Presolved::identity(problem)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Row, Var};

    fn cfg() -> Config {
        Config::default()
    }

    #[test]
    fn pure_lp_minimize() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var(Var::cont().bounds(0.0, 10.0).obj(2.0));
        let y = p.add_var(Var::cont().bounds(0.0, 10.0).obj(3.0));
        p.add_row(Row::new().coef(x, 1.0).coef(y, 1.0).ge(4.0));
        let s = solve_milp(&p, &cfg(), Instant::now());
        assert_eq!(s.status(), Status::Optimal);
        assert!((s.objective() - 8.0).abs() < 1e-6, "obj {}", s.objective());
        assert!((s.value(x) - 4.0).abs() < 1e-6);
    }

    #[test]
    fn pure_lp_maximize() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var(Var::cont().bounds(0.0, 4.0).obj(3.0));
        let y = p.add_var(Var::cont().bounds(0.0, 4.0).obj(2.0));
        p.add_row(Row::new().coef(x, 1.0).coef(y, 1.0).le(5.0));
        let s = solve_milp(&p, &cfg(), Instant::now());
        assert_eq!(s.status(), Status::Optimal);
        assert!((s.objective() - 14.0).abs() < 1e-6, "obj {}", s.objective());
    }

    #[test]
    fn small_knapsack() {
        // max 8x + 11y + 6z + 4w, 5x + 7y + 4z + 3w <= 14, binary
        // optimum: y + z + w = 21 weight 14
        let mut p = Problem::new(Sense::Maximize);
        let vals = [8.0, 11.0, 6.0, 4.0];
        let wts = [5.0, 7.0, 4.0, 3.0];
        let vars: Vec<VarId> = vals
            .iter()
            .map(|&v| p.add_var(Var::binary().obj(v)))
            .collect();
        let mut row = Row::new().le(14.0);
        for (v, &w) in vars.iter().zip(&wts) {
            row = row.coef(*v, w);
        }
        p.add_row(row);
        let s = solve_milp(&p, &cfg(), Instant::now());
        assert_eq!(s.status(), Status::Optimal);
        assert!((s.objective() - 21.0).abs() < 1e-6, "obj {}", s.objective());
        assert!(!s.is_one(vars[0]));
        assert!(s.is_one(vars[1]) && s.is_one(vars[2]) && s.is_one(vars[3]));
    }

    #[test]
    fn integer_rounding_matters() {
        // max x + y s.t. 2x + 2y <= 3, integer -> optimum 1 (not 1.5)
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var(Var::integer().bounds(0.0, 5.0).obj(1.0));
        let y = p.add_var(Var::integer().bounds(0.0, 5.0).obj(1.0));
        p.add_row(Row::new().coef(x, 2.0).coef(y, 2.0).le(3.0));
        let s = solve_milp(&p, &cfg(), Instant::now());
        assert_eq!(s.status(), Status::Optimal);
        assert!((s.objective() - 1.0).abs() < 1e-6, "obj {}", s.objective());
    }

    #[test]
    fn infeasible_milp() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var(Var::binary().obj(1.0));
        let y = p.add_var(Var::binary().obj(1.0));
        p.add_row(Row::new().coef(x, 1.0).coef(y, 1.0).ge(3.0));
        let s = solve_milp(&p, &cfg(), Instant::now());
        assert_eq!(s.status(), Status::Infeasible);
    }

    #[test]
    fn equality_partition() {
        // choose exactly one of three options with different costs
        let mut p = Problem::new(Sense::Minimize);
        let a = p.add_var(Var::binary().obj(5.0));
        let b = p.add_var(Var::binary().obj(3.0));
        let c = p.add_var(Var::binary().obj(7.0));
        p.add_row(Row::new().coef(a, 1.0).coef(b, 1.0).coef(c, 1.0).eq(1.0));
        let s = solve_milp(&p, &cfg(), Instant::now());
        assert_eq!(s.status(), Status::Optimal);
        assert!((s.objective() - 3.0).abs() < 1e-6);
        assert!(s.is_one(b));
    }

    #[test]
    fn node_limit_reports_limit_status() {
        // a knapsack too hard for 1 node without heuristics
        let mut p = Problem::new(Sense::Maximize);
        let n = 12;
        let mut row = Row::new().le(17.0);
        for i in 0..n {
            let v = p.add_var(Var::binary().obj(3.0 + (i as f64 % 5.0)));
            row = row.coef(v, 2.0 + (i as f64 % 3.0));
        }
        p.add_row(row);
        let mut c = cfg().with_node_limit(1).with_heuristics(false);
        c.presolve = false;
        let s = solve_milp(&p, &c, Instant::now());
        assert!(matches!(
            s.status(),
            Status::LimitFeasible | Status::LimitNoSolution | Status::Optimal
        ));
    }

    #[test]
    fn objective_offset_respected() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var(Var::cont().bounds(1.0, 2.0).obj(1.0));
        p.add_row(Row::new().coef(x, 1.0).ge(1.0));
        p.shift_objective(100.0);
        let s = solve_milp(&p, &cfg(), Instant::now());
        assert_eq!(s.status(), Status::Optimal);
        assert!((s.objective() - 101.0).abs() < 1e-6, "obj {}", s.objective());
    }
}
