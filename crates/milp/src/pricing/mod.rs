//! Column generation: root-level pricing of new variables on demand.
//!
//! The solver core knows nothing about what a column *means* — a caller
//! supplies a [`ColumnSource`] that, given the optimal row duals of the
//! restricted LP, proposes improving columns (and any side rows those
//! columns need). [`run_root_pricing`] drives the classic restricted-master
//! loop at the root of the branch-and-bound tree:
//!
//! 1. solve the restricted LP over the current column set;
//! 2. hand the row duals to the source; it returns columns with negative
//!    reduced cost `c_j - y^T a_j < -rc_tol` (internal minimize sense);
//! 3. append the columns (and side rows) to the live LP, splice the old
//!    optimal basis — new columns enter nonbasic at a feasibility-preserving
//!    bound, new row slacks enter basic — and reoptimize warm;
//! 4. repeat until the source returns no column, proving LP optimality over
//!    the *full* (implicit) column set.
//!
//! This is the column mirror of `run_root_cuts`: rows there, variables
//! here, the same append-and-warm-reoptimize discipline. Pricing runs
//! before cut separation so every Gomory cut is derived on the final column
//! set, and it forces an identity presolve so the row indices the source
//! sees are exactly the caller's encode-time indices.

use crate::config::Config;
use crate::presolve::Presolved;
use crate::problem::{Row, RowId, Var, VarId};
use crate::simplex::{solve_lp, LpData, LpResult, LpStatus, SparseCol, SparseRow, VStat};
use crate::solution::Stats;
use std::time::Instant;

/// Everything a [`ColumnSource`] gets to see when asked to price: the
/// restricted LP's optimal duals plus the dimensions needed to index them.
#[derive(Debug)]
pub struct PriceInput<'a> {
    /// Row duals of the restricted LP at its optimum, in row order
    /// (internal **minimize** sense: the reduced cost of a candidate column
    /// with user-sense objective coefficient `c` and entries `a` is
    /// `sign * c - y^T a`).
    pub y: &'a [f64],
    /// Reduced costs of the *existing* variables at the restricted optimum
    /// (internal minimize sense), indexed like the LP columns. A source
    /// pricing compound moves that force an existing nonbasic variable off
    /// its lower bound should charge at least that variable's (nonnegative)
    /// reduced cost — by LP convexity the objective rises by no less. May be
    /// shorter than `num_vars` (even empty) when the last solve went through
    /// a perturbed recovery rung; missing entries must be treated as zero,
    /// which is always optimistic and therefore sound.
    pub dj: &'a [f64],
    /// Number of structural variables currently in the LP. A side row
    /// returned this round addresses the round's `i`-th new column as
    /// `num_vars + i`.
    pub num_vars: usize,
    /// Number of rows currently in the LP (valid entry indices for new
    /// columns are `0..num_rows`).
    pub num_rows: usize,
    /// Optimal objective of the restricted LP (internal minimize sense).
    pub obj: f64,
    /// `+1.0` when the user problem minimizes, `-1.0` when it maximizes;
    /// multiply user-sense objective coefficients by this before comparing
    /// against `y`.
    pub sign: f64,
    /// Accept a column only when its reduced cost is below `-rc_tol`.
    pub rc_tol: f64,
    /// At most this many columns should be returned (most negative reduced
    /// cost first).
    pub max_cols: usize,
}

/// One column proposed by a [`ColumnSource`].
#[derive(Debug, Clone)]
pub struct NewColumn {
    /// Objective coefficient in the **user** sense (the driver applies the
    /// minimize-sign internally).
    pub obj: f64,
    /// Lower bound. For the warm-basis splice to stay primal-feasible the
    /// column must be harmless at this bound: every existing row must remain
    /// satisfied with the column resting here (pricing sources use 0).
    pub lb: f64,
    /// Upper bound.
    pub ub: f64,
    /// Whether the variable is integral (branched on like any other).
    pub integer: bool,
    /// Diagnostic name.
    pub name: Option<String>,
    /// `(existing row index, coefficient)` entries of the column.
    pub entries: Vec<(usize, f64)>,
}

/// A side row accompanying a batch of priced columns (e.g. a disjointness
/// row linking a new path variable to an existing one).
#[derive(Debug, Clone)]
pub struct NewRow {
    /// `(variable index, coefficient)` pairs; indices `< num_vars` address
    /// existing variables, `num_vars + i` addresses the batch's `i`-th new
    /// column. The row must be satisfied by the current LP optimum with
    /// every new column at its lower bound, or the warm splice loses primal
    /// feasibility.
    pub coefs: Vec<(usize, f64)>,
    /// Row lower bound.
    pub lb: f64,
    /// Row upper bound.
    pub ub: f64,
    /// Annotate the row as a GUB disjunction for the clique separator.
    pub gub: bool,
    /// Diagnostic name.
    pub name: Option<String>,
}

/// What a [`ColumnSource`] returns for one pricing round. An empty `cols`
/// terminates the loop (and certifies LP optimality over the full column
/// set, provided the source's reduced-cost test is exact or optimistic).
#[derive(Debug, Clone, Default)]
pub struct PricedBatch {
    /// New columns, most negative reduced cost first.
    pub cols: Vec<NewColumn>,
    /// Side rows over existing variables and this batch's columns.
    pub rows: Vec<NewRow>,
}

/// A supplier of priced columns, implemented by the modeling layer (the
/// archex path-pricing oracle) and handed to
/// [`crate::Solver::solve_with_columns`].
pub trait ColumnSource {
    /// Proposes improving columns for the current restricted optimum.
    /// Returning an empty batch ends the pricing loop.
    fn price(&mut self, input: &PriceInput<'_>) -> PricedBatch;

    /// Serializes whatever bookkeeping the source needs to survive a
    /// checkpoint/resume cycle (stored opaquely in the frame). Stateless
    /// sources keep the default empty payload.
    fn snapshot_state(&self) -> Vec<u8> {
        Vec::new()
    }

    /// Restores bookkeeping captured by [`ColumnSource::snapshot_state`]
    /// before a resumed solve. The default ignores the payload.
    fn restore_state(&mut self, _bytes: &[u8]) {}
}

/// Splices a warm-status vector for an LP that grew by `k` columns and `r`
/// rows: `[old structural | k new columns nonbasic | old slacks | r new
/// slacks basic]`. New columns rest at their lower bound (finite) or free at
/// zero; new row slacks enter the basis, keeping it square.
fn splice_statuses(old: &[VStat], n0: usize, new_lb: &[f64], r: usize) -> Vec<VStat> {
    let mut v = Vec::with_capacity(old.len() + new_lb.len() + r);
    v.extend_from_slice(&old[..n0]);
    v.extend(new_lb.iter().map(|lb| {
        if lb.is_finite() {
            VStat::AtLower
        } else {
            VStat::Free
        }
    }));
    v.extend_from_slice(&old[n0..]);
    v.resize(v.len() + r, VStat::Basic);
    v
}

/// Runs the root pricing loop. On entry `root` holds the optimal result of
/// the restricted root LP; on exit it holds the optimal result over every
/// column the source priced in, and `ps.reduced`, `lp`, the bound vectors,
/// and `int_vars` have grown consistently. Failed reoptimizations roll the
/// round back and stop the loop — the restricted optimum before the round
/// stays valid, pricing is only ever an improvement pass.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_root_pricing(
    source: &mut dyn ColumnSource,
    ps: &mut Presolved,
    lp: &mut LpData,
    root_lb: &mut Vec<f64>,
    root_ub: &mut Vec<f64>,
    int_vars: &mut Vec<usize>,
    cfg: &Config,
    root: &mut LpResult,
    deadline: Option<Instant>,
    sign: f64,
    stats: &mut Stats,
    accepted: &mut Vec<crate::checkpoint::FrameBatch>,
) {
    let t0 = Instant::now();
    let mut stalled = 0usize;
    for _round in 0..cfg.colgen.max_rounds {
        if deadline.is_some_and(|d| Instant::now() >= d) || cfg.is_cancelled() {
            break;
        }
        if root.y.len() != lp.num_rows() {
            break; // duals unavailable (perturbed recovery rung)
        }
        let input = PriceInput {
            y: &root.y,
            dj: &root.dj,
            num_vars: lp.num_vars(),
            num_rows: lp.num_rows(),
            obj: root.obj,
            sign,
            rc_tol: cfg.colgen.rc_tol,
            max_cols: cfg.colgen.max_cols_per_round,
        };
        stats.pricing_rounds += 1;
        let batch = source.price(&input);
        // Mid-round cancellation point: a cancel that lands while the
        // oracle prices must abort here, before the splice + reoptimize.
        // The fault hook fires scheduled test cancellations at this spot.
        if let Some(f) = cfg.faults.as_ref() {
            f.mark_pricing_round();
        }
        if cfg.is_cancelled() {
            break;
        }
        if batch.cols.is_empty() {
            break; // no improving column: optimal over the full set
        }
        let n0 = lp.num_vars();
        let k = batch.cols.len().min(cfg.colgen.max_cols_per_round);
        let cols = &batch.cols[..k];

        // Snapshot for rollback; mirrors run_root_cuts' per-round backup.
        let lp_backup = lp.clone();
        let reduced_backup = ps.reduced.clone();

        // Grow the reduced problem first: variables, then their entries in
        // existing rows, then side rows (which may reference the new vars).
        let mut new_lb = Vec::with_capacity(k);
        for col in cols {
            let mut builder = if col.integer {
                if col.lb >= 0.0 && col.ub <= 1.0 {
                    Var::binary()
                } else {
                    Var::integer()
                }
            } else {
                Var::cont()
            }
            .bounds(col.lb, col.ub)
            .obj(col.obj);
            if let Some(name) = &col.name {
                builder = builder.name(name.clone());
            }
            let vid = ps.reduced.add_var(builder);
            debug_assert_eq!(vid.index(), ps.reduced.num_vars() - 1);
            for &(r, v) in &col.entries {
                ps.reduced.add_row_coef(RowId(r), vid, v);
            }
            new_lb.push(col.lb);
        }
        let mut ok = true;
        for row in &batch.rows {
            let mut builder = Row::new().range(row.lb, row.ub);
            for &(j, v) in &row.coefs {
                if j >= n0 + k {
                    ok = false;
                    break;
                }
                builder = builder.coef(VarId(j), v);
            }
            if !ok {
                break;
            }
            if let Some(name) = &row.name {
                builder = builder.name(name.clone());
            }
            let rid = ps.reduced.add_row(builder);
            if row.gub {
                ps.reduced.mark_gub(rid);
            }
        }
        if !ok {
            ps.reduced = reduced_backup;
            break; // malformed batch: keep the restricted optimum
        }

        // Grow the computational LP the same way: columns first (so row
        // coefficients over the new variables are in range), then rows.
        let sparse_cols: Vec<SparseCol> = cols
            .iter()
            .map(|c| (c.entries.clone(), sign * c.obj))
            .collect();
        lp.append_cols(&sparse_cols);
        let sparse_rows: Vec<SparseRow> = batch
            .rows
            .iter()
            .map(|r| (r.coefs.clone(), r.lb, r.ub))
            .collect();
        lp.append_rows(&sparse_rows);
        for col in cols {
            root_lb.push(col.lb);
            root_ub.push(col.ub);
            if col.integer {
                int_vars.push(root_lb.len() - 1);
            }
        }

        // Warm reoptimize from the spliced basis: new columns at their
        // resting bound keep every old row satisfied, new row slacks enter
        // basic, so the primal simplex restarts feasible in Phase 2.
        let spliced = splice_statuses(&root.statuses, n0, &new_lb, batch.rows.len());
        stats.lp_solves += 1;
        let prev_obj = root.obj;
        let reopt = solve_lp(lp, root_lb, root_ub, cfg, Some(&spliced), deadline);
        // Fault injection: treat this round's reoptimization as failed so
        // the splice rollback below runs under test control.
        let forced_failure = cfg
            .faults
            .as_ref()
            .is_some_and(|f| f.take_pricing_reopt_failure());
        match reopt {
            Ok(r) if r.status == LpStatus::Optimal && !forced_failure => {
                stats.simplex_iters += r.iters;
                stats.phase1_iters += r.phase1_iters;
                stats.dual_iters += r.dual_iters;
                if r.recoveries > 0 {
                    stats.lp_recoveries += 1;
                }
                *root = r;
                ps.register_appended_vars(k);
                stats.cols_priced += k;
                accepted.push(crate::checkpoint::FrameBatch {
                    cols: cols.to_vec(),
                    rows: batch.rows.clone(),
                });
                let tol = cfg.colgen.rc_tol * (1.0 + prev_obj.abs());
                if prev_obj - root.obj <= tol {
                    stalled += 1;
                    if stalled >= cfg.colgen.stall_rounds {
                        break;
                    }
                } else {
                    stalled = 0;
                }
            }
            _ => {
                // Reoptimization failed (limit, numeric trouble, or an
                // impossible infeasible/unbounded flip): roll the round
                // back and stop pricing — the pre-round optimum stands.
                *lp = lp_backup;
                ps.reduced = reduced_backup;
                root_lb.truncate(n0);
                root_ub.truncate(n0);
                int_vars.retain(|&j| j < n0);
                debug_assert_eq!(lp.num_vars(), n0, "rollback must restore the LP width");
                debug_assert_eq!(root_lb.len(), n0);
                break;
            }
        }
    }
    stats.pricing_time += t0.elapsed();
}

/// Replays accepted pricing rounds from a checkpoint frame onto a freshly
/// re-encoded problem, growing `ps.reduced`, the computational LP, and the
/// bound/integrality vectors exactly as [`run_root_pricing`]'s accept path
/// did — batch by batch, so side-row variable indices resolve the same way.
/// No LP is solved; the resumed search cold-solves its nodes. Returns
/// `false` when a batch is malformed (a frame written by different code),
/// leaving the caller to reject the resume.
pub(crate) fn replay_batches(
    ps: &mut Presolved,
    lp: &mut LpData,
    root_lb: &mut Vec<f64>,
    root_ub: &mut Vec<f64>,
    int_vars: &mut Vec<usize>,
    batches: &[crate::checkpoint::FrameBatch],
    sign: f64,
) -> bool {
    for batch in batches {
        let n0 = lp.num_vars();
        let k = batch.cols.len();
        for col in &batch.cols {
            let mut builder = if col.integer {
                if col.lb >= 0.0 && col.ub <= 1.0 {
                    Var::binary()
                } else {
                    Var::integer()
                }
            } else {
                Var::cont()
            }
            .bounds(col.lb, col.ub)
            .obj(col.obj);
            if let Some(name) = &col.name {
                builder = builder.name(name.clone());
            }
            let vid = ps.reduced.add_var(builder);
            debug_assert_eq!(vid.index(), ps.reduced.num_vars() - 1);
            for &(r, v) in &col.entries {
                if r >= lp.num_rows() {
                    return false;
                }
                ps.reduced.add_row_coef(RowId(r), vid, v);
            }
        }
        for row in &batch.rows {
            let mut builder = Row::new().range(row.lb, row.ub);
            for &(j, v) in &row.coefs {
                if j >= n0 + k {
                    return false;
                }
                builder = builder.coef(VarId(j), v);
            }
            if let Some(name) = &row.name {
                builder = builder.name(name.clone());
            }
            let rid = ps.reduced.add_row(builder);
            if row.gub {
                ps.reduced.mark_gub(rid);
            }
        }
        let sparse_cols: Vec<SparseCol> = batch
            .cols
            .iter()
            .map(|c| (c.entries.clone(), sign * c.obj))
            .collect();
        lp.append_cols(&sparse_cols);
        let sparse_rows: Vec<SparseRow> = batch
            .rows
            .iter()
            .map(|r| (r.coefs.clone(), r.lb, r.ub))
            .collect();
        lp.append_rows(&sparse_rows);
        for col in &batch.cols {
            root_lb.push(col.lb);
            root_ub.push(col.ub);
            if col.integer {
                int_vars.push(root_lb.len() - 1);
            }
        }
        ps.register_appended_vars(k);
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::branch::solve_milp_with;
    use crate::problem::{Problem, Sense};
    use crate::solution::Status;

    /// A scripted source: each call pops the next batch.
    struct Scripted {
        batches: Vec<PricedBatch>,
        seen_duals: Vec<Vec<f64>>,
    }

    impl ColumnSource for Scripted {
        fn price(&mut self, input: &PriceInput<'_>) -> PricedBatch {
            self.seen_duals.push(input.y.to_vec());
            if self.batches.is_empty() {
                PricedBatch::default()
            } else {
                self.batches.remove(0)
            }
        }
    }

    /// min 2x1 + 3x2 s.t. x1 + x2 >= 2: dual y0 = 2 at the optimum (4.0).
    fn cover_problem() -> Problem {
        let mut p = Problem::new(Sense::Minimize);
        let x1 = p.add_var(Var::cont().bounds(0.0, 10.0).obj(2.0).name("x1"));
        let x2 = p.add_var(Var::cont().bounds(0.0, 10.0).obj(3.0).name("x2"));
        p.add_row(Row::new().coef(x1, 1.0).coef(x2, 1.0).ge(2.0));
        p
    }

    #[test]
    fn priced_column_improves_objective() {
        let p = cover_problem();
        // Column x3 with cost 1 covering the same row: rc = 1 - 2 = -1.
        let mut src = Scripted {
            batches: vec![PricedBatch {
                cols: vec![NewColumn {
                    obj: 1.0,
                    lb: 0.0,
                    ub: 10.0,
                    integer: false,
                    name: Some("x3".into()),
                    entries: vec![(0, 1.0)],
                }],
                rows: vec![],
            }],
            seen_duals: Vec::new(),
        };
        let cfg = Config::default();
        let s = solve_milp_with(&p, &cfg, Instant::now(), Some(&mut src));
        assert_eq!(s.status(), Status::Optimal);
        assert!((s.objective() - 2.0).abs() < 1e-6, "obj {}", s.objective());
        assert_eq!(s.stats().cols_priced, 1);
        assert!(s.stats().pricing_rounds >= 2, "needs a terminal empty round");
        // The first duals the source saw price the covering row at 2.
        assert!((src.seen_duals[0][0] - 2.0).abs() < 1e-6);
        // Solution vector covers the appended variable.
        assert_eq!(s.values().len(), 3);
        assert!((s.values()[2] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn side_row_caps_priced_column() {
        let p = cover_problem();
        // Same improving column, but a side row caps it at 1: the optimum
        // splits 1 unit at cost 1 and 1 unit at cost 2.
        let mut src = Scripted {
            batches: vec![PricedBatch {
                cols: vec![NewColumn {
                    obj: 1.0,
                    lb: 0.0,
                    ub: 10.0,
                    integer: false,
                    name: None,
                    entries: vec![(0, 1.0)],
                }],
                rows: vec![NewRow {
                    coefs: vec![(2, 1.0)], // num_vars + 0 = 2
                    lb: f64::NEG_INFINITY,
                    ub: 1.0,
                    gub: false,
                    name: None,
                }],
            }],
            seen_duals: Vec::new(),
        };
        let cfg = Config::default();
        let s = solve_milp_with(&p, &cfg, Instant::now(), Some(&mut src));
        assert_eq!(s.status(), Status::Optimal);
        assert!((s.objective() - 3.0).abs() < 1e-6, "obj {}", s.objective());
    }

    #[test]
    fn disabled_colgen_skips_the_source() {
        let p = cover_problem();
        let mut src = Scripted {
            batches: vec![],
            seen_duals: Vec::new(),
        };
        let cfg = Config::default().with_colgen(crate::ColGenConfig::off());
        let s = solve_milp_with(&p, &cfg, Instant::now(), Some(&mut src));
        assert_eq!(s.status(), Status::Optimal);
        assert!((s.objective() - 4.0).abs() < 1e-6);
        assert!(src.seen_duals.is_empty(), "source must not be consulted");
        assert_eq!(s.stats().cols_priced, 0);
    }

    #[test]
    fn integer_priced_column_is_branched() {
        // min 2a + 3b, a + b >= 2, binaries: optimum a = b = 1, obj 5.
        let mut p = Problem::new(Sense::Minimize);
        let a = p.add_var(Var::binary().obj(2.0));
        let b = p.add_var(Var::binary().obj(3.0));
        p.add_row(Row::new().coef(a, 1.0).coef(b, 1.0).ge(2.0));
        // Price in a cheaper binary c (covers 2 units at once, cost 1):
        // optimum becomes c = 1, obj 1 — and c must come out integral.
        let mut src = Scripted {
            batches: vec![PricedBatch {
                cols: vec![NewColumn {
                    obj: 1.0,
                    lb: 0.0,
                    ub: 1.0,
                    integer: true,
                    name: Some("c".into()),
                    entries: vec![(0, 2.0)],
                }],
                rows: vec![],
            }],
            seen_duals: Vec::new(),
        };
        let cfg = Config::default();
        let s = solve_milp_with(&p, &cfg, Instant::now(), Some(&mut src));
        assert_eq!(s.status(), Status::Optimal);
        assert!((s.objective() - 1.0).abs() < 1e-6, "obj {}", s.objective());
        let v = s.values();
        assert!((v[2] - 1.0).abs() < 1e-6, "priced binary must be 1: {v:?}");
    }

    #[test]
    fn splice_statuses_shapes() {
        let old = vec![VStat::Basic, VStat::AtLower, VStat::Basic]; // n0=2, m0=1
        let got = splice_statuses(&old, 2, &[0.0, f64::NEG_INFINITY], 1);
        assert_eq!(
            got,
            vec![
                VStat::Basic,
                VStat::AtLower,
                VStat::AtLower, // new col, finite lb
                VStat::Free,    // new col, free
                VStat::Basic,   // old slack
                VStat::Basic,   // new row slack
            ]
        );
    }
}
