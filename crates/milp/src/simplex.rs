//! Bounded-variable revised simplex: primal with a composite Phase 1, plus
//! a dual simplex for warm-started reoptimization.
//!
//! The LP is held in the computational form
//!
//! ```text
//!   minimize  c^T x
//!   s.t.      A x - s = 0,   l <= [x; s] <= u
//! ```
//!
//! where one slack `s_r` with bounds equal to the row range is attached to
//! every row. The initial basis is the (always nonsingular) slack basis;
//! Phase 1 minimizes the sum of bound violations of basic variables using the
//! standard composite cost vector, and Phase 2 runs the classic revised
//! simplex with Devex pricing (Dantzig optional), a bound-flip-aware ratio
//! test, and Bland's rule as an anti-cycling fallback.
//!
//! When a warm-start basis is supplied and only variable bounds changed
//! since it was optimal (the branch-and-bound child-node case), the basis
//! is still **dual-feasible**, and the solver runs the **dual simplex**
//! instead of primal Phase 1: it picks the most bound-violating basic
//! variable (dual Devex row weights), runs a bound-flipping dual ratio
//! test over the pivot row, and pivots until primal feasibility is
//! restored — typically a handful of pivots instead of a full cold solve.
//! Any loss of dual feasibility (repaired statuses, numerical drift) makes
//! it fall back to the primal path, so the dual method is an accelerator,
//! never a correctness dependency.
//!
//! Numerical failures are recovered in-solver before surfacing: a singular
//! factorization triggers a refactorize / slack-basis reset, a persistent
//! stall restarts the solve under Bland's rule, and a final rung re-solves
//! with seeded cost perturbations. Only when all rungs fail does
//! [`solve_lp`] return a [`SolveError`].

use crate::config::{Config, PricingRule, ReoptMode};
use crate::error::SolveError;
use crate::lu::{Factorization, LuError};
use crate::sparse::CscMatrix;
use std::time::Instant;

/// Status of one variable in the simplex basis partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VStat {
    /// In the basis.
    Basic,
    /// Nonbasic at its lower bound.
    AtLower,
    /// Nonbasic at its upper bound.
    AtUpper,
    /// Nonbasic free variable (held at zero).
    Free,
}

/// Outcome status of one LP solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LpStatus {
    /// Optimal basic solution found.
    Optimal,
    /// The constraints admit no feasible point.
    Infeasible,
    /// The objective is unbounded below (in minimization form).
    Unbounded,
    /// Iteration or time limit reached before convergence.
    Limit,
}

/// Result of one LP solve.
#[derive(Debug, Clone)]
pub struct LpResult {
    /// Final status.
    pub status: LpStatus,
    /// Objective value (minimization form) when `status == Optimal`.
    pub obj: f64,
    /// Values of the structural variables (length = number of columns of A).
    pub x: Vec<f64>,
    /// Simplex iterations used (all phases, dual included).
    pub iters: usize,
    /// Iterations spent in primal Phase 1 (feasibility restoration).
    pub phase1_iters: usize,
    /// Iterations spent in the dual simplex reoptimizer.
    pub dual_iters: usize,
    /// Final basis statuses over structural + slack variables; reusable as a
    /// warm start for a subsequent solve with modified bounds.
    pub statuses: Vec<VStat>,
    /// Reduced costs of the structural variables at termination (zero for
    /// basic and fixed variables). Meaningful when `status == Optimal`;
    /// used for reduced-cost variable fixing in branch and bound.
    pub dj: Vec<f64>,
    /// Row duals `y = B^{-T} c_B` at termination (length = number of rows).
    /// Meaningful when `status == Optimal`; the sign convention makes the
    /// reduced cost of a candidate column `a` equal to `c_a - y^T a`, which
    /// is what column-generation pricing consumes. Zeroed on perturbed
    /// recovery rungs (alongside `dj`) so pricing never trusts them.
    pub y: Vec<f64>,
    /// Recovery rungs consumed before this result was produced (0 = clean
    /// solve, 1 = Bland's-rule restart, 2 = perturb-and-retry).
    pub recoveries: usize,
}

/// A ranged sparse row `(coefs, lb, ub)` over the structural variables,
/// as consumed by [`LpData::append_rows`].
pub type SparseRow = (Vec<(usize, f64)>, f64, f64);

/// A structural column `(entries, cost)` over the existing rows, as consumed
/// by [`LpData::append_cols`]. Entries are `(row, value)` pairs.
pub type SparseCol = (Vec<(usize, f64)>, f64);

/// The LP data in computational form, shared across warm-started solves.
///
/// Constraint matrix and costs stay fixed; variable bounds are passed to
/// [`solve_lp`] per call so a branch-and-bound driver can tighten them
/// cheaply.
#[derive(Debug, Clone)]
pub struct LpData {
    /// Constraint matrix (rows x structural variables).
    pub a: CscMatrix,
    /// Structural costs (minimization).
    pub c: Vec<f64>,
    /// Row lower bounds (range constraints).
    pub row_lb: Vec<f64>,
    /// Row upper bounds.
    pub row_ub: Vec<f64>,
}

// Parallel branch and bound shares one `LpData` across worker threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<LpData>();
};

impl LpData {
    /// Number of structural variables.
    pub fn num_vars(&self) -> usize {
        self.a.ncols()
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.a.nrows()
    }

    /// Appends extra rows (cutting planes) to the LP in one rebuild.
    ///
    /// Each entry is `(coefs, lb, ub)` over the structural variables. The
    /// new rows' slacks extend the slack block at the end, so an existing
    /// status vector stays index-consistent when padded with one
    /// [`VStat::Basic`] entry per appended row — appending a cut whose slack
    /// enters the basis keeps the old basis dual-feasible, which is what
    /// lets [`crate::ReoptMode::Dual`] reoptimize in a few pivots.
    pub fn append_rows(&mut self, rows: &[SparseRow]) {
        if rows.is_empty() {
            return;
        }
        let m0 = self.num_rows();
        let mut b = crate::sparse::TripletBuilder::new(m0 + rows.len(), self.num_vars());
        for (r, c, v) in self.a.triplets() {
            b.push(r, c, v);
        }
        for (i, (coefs, lo, hi)) in rows.iter().enumerate() {
            for &(j, v) in coefs {
                b.push(m0 + i, j, v);
            }
            self.row_lb.push(*lo);
            self.row_ub.push(*hi);
        }
        self.a = b.build();
    }

    /// Appends extra structural columns (priced-in variables) in one rebuild.
    ///
    /// Each entry is `(entries, cost)` over the *existing* rows. The new
    /// columns extend the structural block, shifting the slack block right
    /// by `cols.len()`: an existing status vector stays index-consistent when
    /// spliced as `[old structural] + [one VStat per new column] + [old
    /// slacks]`. Entering the new columns nonbasic at a bound that satisfies
    /// every row (for pricing, at lower bound zero) keeps the old basis
    /// primal-feasible, so a warm Phase-2 primal reoptimization converges in
    /// a few pivots — the column mirror of [`LpData::append_rows`].
    pub fn append_cols(&mut self, cols: &[SparseCol]) {
        if cols.is_empty() {
            return;
        }
        let n0 = self.num_vars();
        let mut b = crate::sparse::TripletBuilder::new(self.num_rows(), n0 + cols.len());
        for (r, c, v) in self.a.triplets() {
            b.push(r, c, v);
        }
        for (j, (entries, cost)) in cols.iter().enumerate() {
            for &(r, v) in entries {
                b.push(r, n0 + j, v);
            }
            self.c.push(*cost);
        }
        self.a = b.build();
    }
}

/// One row of the simplex tableau for a basic variable, extracted from the
/// final LU factorization of an optimal basis.
///
/// The augmented system `[A | -I] [x; s] = 0` has zero right-hand side, so
/// the row reads `x_var + sum_k coefs[k] * z_k = 0` where `z_k` ranges over
/// the *nonbasic* variables in augmented indexing (structural `j < n`,
/// slack of row `r` at `n + r`). Equivalently, with every nonbasic shifted
/// to its current resting value `z̄_k`, `x_var + sum_k coefs[k] * (z_k -
/// z̄_k) = rhs` where `rhs` is the basic variable's current value — the
/// form Gomory derivation wants.
#[derive(Debug, Clone)]
pub struct TableauRow {
    /// Augmented index of the basic variable this row belongs to.
    pub var: usize,
    /// Value of the basic variable at the current solution.
    pub rhs: f64,
    /// `(augmented nonbasic index, tableau coefficient)` pairs.
    pub coefs: Vec<(usize, f64)>,
}

/// Extracts simplex tableau rows for the requested basic variables by
/// re-installing `statuses` (an optimal basis from [`solve_lp`]) and running
/// one btran per row: row `i` of `B^{-1}` is `btran(e_i)`, and the tableau
/// coefficient of nonbasic column `k` is its dot product with that row.
///
/// Returns `None` when the basis cannot be re-installed or re-factorized
/// (wrong length, singular under fault injection, ...). Coefficients below
/// `1e-12` in magnitude are dropped; Gomory separation re-validates the cut
/// numerically anyway.
pub fn extract_tableau_rows(
    lp: &LpData,
    var_lb: &[f64],
    var_ub: &[f64],
    cfg: &Config,
    statuses: &[VStat],
    wanted: &[usize],
) -> Option<Vec<TableauRow>> {
    let mut eng = Engine::new(lp, var_lb, var_ub, cfg, None);
    match eng.install(Some(statuses)) {
        Ok(true) => {}
        // Falling back to the slack basis would extract rows of a basis
        // nobody asked about; report failure instead.
        Ok(false) | Err(_) => return None,
    }
    eng.compute_basics();
    let mut rows = Vec::with_capacity(wanted.len());
    let mut rho = vec![0.0; eng.m];
    for &j in wanted {
        if eng.status.get(j).copied() != Some(VStat::Basic) {
            continue;
        }
        let i = eng.pos[j];
        rho.iter_mut().for_each(|v| *v = 0.0);
        rho[i] = 1.0;
        eng.fact.btran(&mut rho);
        let mut coefs = Vec::new();
        for k in 0..eng.nn {
            if eng.status[k] == VStat::Basic {
                continue;
            }
            let a = if k < eng.n {
                eng.lp.a.col_dot(k, &rho)
            } else {
                -rho[k - eng.n]
            };
            if a.abs() > 1e-12 {
                coefs.push((k, a));
            }
        }
        rows.push(TableauRow {
            var: j,
            rhs: eng.x[j],
            coefs,
        });
    }
    Some(rows)
}

struct Engine<'a> {
    lp: &'a LpData,
    /// Bounds over structural + slack variables.
    lb: Vec<f64>,
    ub: Vec<f64>,
    /// Costs over structural + slack variables (slacks have zero cost).
    cost: Vec<f64>,
    n: usize,
    m: usize,
    nn: usize,
    status: Vec<VStat>,
    basis: Vec<usize>,
    /// basis position of each variable (usize::MAX if nonbasic)
    pos: Vec<usize>,
    x: Vec<f64>,
    fact: Factorization,
    cfg: &'a Config,
    iters: usize,
    phase1_iters: usize,
    dual_iters: usize,
    degenerate_run: usize,
    deadline: Option<Instant>,
    /// Recovery rung: forces Bland's rule from the first iteration.
    force_bland: bool,
    /// Slack-basis rebuilds performed after singular factorizations; capped
    /// so a persistently singular basis surfaces as an error instead of
    /// looping.
    slack_resets: usize,
    /// Last factorization failure, kept for error reporting.
    last_lu: Option<LuError>,
    /// Primal Devex reference weights over all variables (reset to 1 with
    /// every basis install).
    devex: Vec<f64>,
    /// Dual Devex row weights over basis positions.
    dual_devex: Vec<f64>,
    /// Reduced costs captured during the last complete Phase-2 pricing
    /// pass (zero at basic/fixed entries).
    dj: Vec<f64>,
}

enum Pricing {
    Entering { j: usize, dir: f64 },
    OptimalOrFeasible,
}

enum Ratio {
    BoundFlip { t: f64 },
    Pivot { t: f64, leave_pos: usize, leave_to_upper: bool },
    Unbounded,
}

/// Terminating condition of a dual-simplex run.
enum DualRun {
    /// Primal feasibility restored; Phase 2 will certify optimality.
    Feasible,
    /// Dual unbounded: the primal LP is infeasible.
    Infeasible,
    /// Deadline / iteration limit reached.
    Limit,
    /// The dual method cannot (or should not) continue from this basis;
    /// the caller falls back to the primal Phase 1 path.
    Fallback,
}

impl<'a> Engine<'a> {
    fn new(
        lp: &'a LpData,
        var_lb: &[f64],
        var_ub: &[f64],
        cfg: &'a Config,
        deadline: Option<Instant>,
    ) -> Self {
        let n = lp.num_vars();
        let m = lp.num_rows();
        let nn = n + m;
        let mut lb = Vec::with_capacity(nn);
        let mut ub = Vec::with_capacity(nn);
        lb.extend_from_slice(var_lb);
        ub.extend_from_slice(var_ub);
        lb.extend_from_slice(&lp.row_lb);
        ub.extend_from_slice(&lp.row_ub);
        let mut cost = Vec::with_capacity(nn);
        cost.extend_from_slice(&lp.c);
        cost.extend(std::iter::repeat_n(0.0, m));
        Engine {
            lp,
            lb,
            ub,
            cost,
            n,
            m,
            nn,
            status: vec![VStat::AtLower; nn],
            basis: Vec::new(),
            pos: vec![usize::MAX; nn],
            x: vec![0.0; nn],
            fact: Factorization::new(m),
            cfg,
            iters: 0,
            phase1_iters: 0,
            dual_iters: 0,
            degenerate_run: 0,
            deadline,
            force_bland: false,
            slack_resets: 0,
            last_lu: None,
            devex: vec![1.0; nn],
            dual_devex: vec![1.0; m],
            dj: vec![0.0; nn],
        }
    }

    /// Column of the augmented matrix `[A | -I]` for variable `j`.
    fn column(&self, j: usize, buf: &mut Vec<(usize, f64)>) {
        buf.clear();
        if j < self.n {
            for (r, v) in self.lp.a.col(j) {
                buf.push((r, v));
            }
        } else {
            buf.push((j - self.n, -1.0));
        }
    }

    /// Value a nonbasic variable should rest at, given its status.
    fn nonbasic_value(&self, j: usize) -> f64 {
        match self.status[j] {
            VStat::AtLower => self.lb[j],
            VStat::AtUpper => self.ub[j],
            VStat::Free => 0.0,
            VStat::Basic => unreachable!("basic variable has no resting value"),
        }
    }

    /// Picks the natural status for a nonbasic variable.
    fn natural_status(lb: f64, ub: f64) -> VStat {
        if lb.is_finite() {
            VStat::AtLower
        } else if ub.is_finite() {
            VStat::AtUpper
        } else {
            VStat::Free
        }
    }

    /// Installs the all-slack basis.
    fn slack_basis(&mut self) {
        for j in 0..self.n {
            self.status[j] = Self::natural_status(self.lb[j], self.ub[j]);
            self.pos[j] = usize::MAX;
        }
        self.basis = (self.n..self.nn).collect();
        for (i, &j) in self.basis.iter().enumerate() {
            self.status[j] = VStat::Basic;
            self.pos[j] = i;
        }
    }

    /// Installs a warm-start status vector if it is usable, else the slack
    /// basis. Returns whether the warm basis was installed (so the caller
    /// knows a dual-feasible start may be available). Errs only when even
    /// the slack basis fails to factorize.
    fn install(&mut self, warm: Option<&[VStat]>) -> Result<bool, SolveError> {
        self.devex.iter_mut().for_each(|w| *w = 1.0);
        self.dual_devex.iter_mut().for_each(|w| *w = 1.0);
        if let Some(w) = warm {
            if w.len() == self.nn && w.iter().filter(|s| **s == VStat::Basic).count() == self.m {
                self.basis.clear();
                for (j, &s) in w.iter().enumerate() {
                    let s = match s {
                        // repair statuses that bound changes made inconsistent
                        VStat::AtLower if !self.lb[j].is_finite() => {
                            Self::natural_status(self.lb[j], self.ub[j])
                        }
                        VStat::AtUpper if !self.ub[j].is_finite() => {
                            Self::natural_status(self.lb[j], self.ub[j])
                        }
                        VStat::Free if self.lb[j].is_finite() || self.ub[j].is_finite() => {
                            Self::natural_status(self.lb[j], self.ub[j])
                        }
                        s => s,
                    };
                    self.status[j] = s;
                    if s == VStat::Basic {
                        self.pos[j] = self.basis.len();
                        self.basis.push(j);
                    } else {
                        self.pos[j] = usize::MAX;
                    }
                }
                if self.refactorize() {
                    return Ok(true);
                }
            }
        }
        self.slack_basis();
        if self.refactorize() || self.refactorize() {
            // The slack basis is -I and can only fail under injection or a
            // broken workspace; one retry absorbs a single injected fault.
            return Ok(false);
        }
        Err(self
            .last_lu
            .clone()
            .map(SolveError::from)
            .unwrap_or(SolveError::SingularBasis { position: 0 }))
    }

    fn refactorize(&mut self) -> bool {
        if let Some(f) = &self.cfg.faults {
            if f.on_factorize() {
                // Injected singularity: report exactly what a real one would.
                self.last_lu = Some(LuError::Singular { position: 0 });
                return false;
            }
        }
        let mut colbuf: Vec<(usize, f64)> = Vec::new();
        let basis = self.basis.clone();
        let lp = self.lp;
        let n = self.n;
        match self.fact.factorize(|k, out| {
            let j = basis[k];
            colbuf.clear();
            if j < n {
                for (r, v) in lp.a.col(j) {
                    out.push((r, v));
                }
            } else {
                out.push((j - n, -1.0));
            }
        }) {
            Ok(()) => true,
            Err(e) => {
                self.last_lu = Some(e);
                false
            }
        }
    }

    /// Recomputes the values of all basic variables from the nonbasic rest
    /// values: `B x_B = -sum_j Abar_j x_j`.
    fn compute_basics(&mut self) {
        let mut rhs = vec![0.0; self.m];
        for j in 0..self.nn {
            if self.status[j] == VStat::Basic {
                continue;
            }
            let xj = self.nonbasic_value(j);
            self.x[j] = xj;
            if xj != 0.0 {
                if j < self.n {
                    self.lp.a.axpy_col(j, -xj, &mut rhs);
                } else {
                    rhs[j - self.n] += xj; // -(-1)*xj
                }
            }
        }
        self.fact.ftran(&mut rhs);
        for (i, &j) in self.basis.iter().enumerate() {
            self.x[j] = rhs[i];
        }
    }

    fn infeasibility(&self) -> f64 {
        let t = self.cfg.feas_tol;
        self.basis
            .iter()
            .map(|&j| {
                let v = self.x[j];
                if v < self.lb[j] - t {
                    self.lb[j] - v
                } else if v > self.ub[j] + t {
                    v - self.ub[j]
                } else {
                    0.0
                }
            })
            .sum()
    }

    /// Computes reduced costs via btran and picks an entering variable.
    /// `phase1` selects the composite infeasibility costs. Phase-2 passes
    /// also record the reduced costs in `self.dj` so a terminating
    /// (complete) pass leaves them valid for reduced-cost fixing.
    fn price(&mut self, phase1: bool, bland: bool) -> Pricing {
        let t = self.cfg.feas_tol;
        let mut cb = vec![0.0; self.m];
        let mut any_cost = false;
        for (i, &j) in self.basis.iter().enumerate() {
            let c = if phase1 {
                let v = self.x[j];
                if v < self.lb[j] - t {
                    -1.0
                } else if v > self.ub[j] + t {
                    1.0
                } else {
                    0.0
                }
            } else {
                self.cost[j]
            };
            if c != 0.0 {
                cb[i] = c;
                any_cost = true;
            }
        }
        if phase1 && !any_cost {
            return Pricing::OptimalOrFeasible;
        }
        self.fact.btran(&mut cb); // now y in row space
        let y = cb;
        let otol = self.cfg.opt_tol;
        let devex = self.cfg.pricing == PricingRule::Devex && !bland;
        if !phase1 {
            // Fresh capture per pass: entries not reached (early Bland
            // return) stay zero, which is always safe for fixing.
            self.dj.iter_mut().for_each(|d| *d = 0.0);
        }
        let mut best: Option<(usize, f64, f64)> = None; // (j, dir, score)
        for j in 0..self.nn {
            let st = self.status[j];
            if st == VStat::Basic {
                continue;
            }
            if self.lb[j] == self.ub[j] {
                continue; // fixed variable can never improve
            }
            let cj = if phase1 { 0.0 } else { self.cost[j] };
            let ay = if j < self.n {
                self.lp.a.col_dot(j, &y)
            } else {
                -y[j - self.n]
            };
            let d = cj - ay;
            if !phase1 {
                self.dj[j] = d;
            }
            let (attractive, dir) = match st {
                VStat::AtLower => (d < -otol, 1.0),
                VStat::AtUpper => (d > otol, -1.0),
                VStat::Free => (d.abs() > otol, if d < 0.0 { 1.0 } else { -1.0 }),
                VStat::Basic => unreachable!(),
            };
            if attractive {
                if bland {
                    return Pricing::Entering { j, dir };
                }
                let score = if devex { d * d / self.devex[j] } else { d.abs() };
                if best.is_none_or(|(_, _, s)| score > s) {
                    best = Some((j, dir, score));
                }
            }
        }
        match best {
            Some((j, dir, _)) => Pricing::Entering { j, dir },
            None => Pricing::OptimalOrFeasible,
        }
    }

    /// Bound-flip-aware ratio test. `w` is the ftran'd entering column
    /// (indexed by basis position), `dir` the movement direction of the
    /// entering variable, `phase1` enables infeasible-basic handling.
    /// Under `bland`, ties are broken by smallest leaving-variable index
    /// (required for Bland's rule to actually prevent cycling).
    fn ratio_test(&self, j: usize, dir: f64, w: &[f64], phase1: bool, bland: bool) -> Ratio {
        let piv_tol = 1e-9;
        let t_feas = self.cfg.feas_tol;
        let mut t_best = f64::INFINITY;
        // (pos, to_upper, tie-break score: |w| normally, -var index for Bland)
        let mut leave: Option<(usize, bool, f64)> = None;
        for (i, &wi) in w.iter().enumerate() {
            if wi.abs() < piv_tol {
                continue;
            }
            let bj = self.basis[i];
            let xv = self.x[bj];
            // delta of basic per unit step: x_B -= dir * t * w
            let delta = -dir * wi;
            let (limit, to_upper): (f64, bool) = if delta > 0.0 {
                // moving up
                if phase1 && xv < self.lb[bj] - t_feas {
                    // infeasible below: stops when reaching its lower bound
                    (self.lb[bj], false)
                } else if self.ub[bj].is_finite() {
                    (self.ub[bj], true)
                } else {
                    continue;
                }
            } else {
                // moving down
                if phase1 && xv > self.ub[bj] + t_feas {
                    (self.ub[bj], true)
                } else if self.lb[bj].is_finite() {
                    (self.lb[bj], false)
                } else {
                    continue;
                }
            };
            let t_i = ((limit - xv) / delta).max(0.0);
            let score = if bland { -(bj as f64) } else { wi.abs() };
            let better = t_i < t_best - 1e-12
                || (t_i < t_best + 1e-12 && leave.is_none_or(|(_, _, s)| score > s));
            if better {
                t_best = t_i;
                leave = Some((i, to_upper, score));
            }
        }
        // Bound flip of the entering variable itself.
        let span = self.ub[j] - self.lb[j];
        if span.is_finite() && span < t_best {
            return Ratio::BoundFlip { t: span };
        }
        match leave {
            Some((pos, to_upper, _)) => Ratio::Pivot {
                t: t_best,
                leave_pos: pos,
                leave_to_upper: to_upper,
            },
            None => Ratio::Unbounded,
        }
    }

    /// Applies a step of size `t` along entering variable `j` (direction
    /// `dir`), updating basic values.
    fn apply_step(&mut self, j: usize, dir: f64, t: f64, w: &[f64]) {
        if t != 0.0 {
            for (i, &wi) in w.iter().enumerate() {
                if wi != 0.0 {
                    let bj = self.basis[i];
                    self.x[bj] -= dir * t * wi;
                }
            }
            self.x[j] += dir * t;
        }
    }

    /// Updates the primal Devex reference weights after variable `j` is
    /// chosen to enter at basis position `leave_pos` with ftran'd column
    /// `w`. Must run *before* the basis swap and eta update: the pivot row
    /// `rho = B^-T e_r` is taken from the pre-pivot factorization, and the
    /// leaving variable is still `basis[leave_pos]`.
    fn update_devex(&mut self, j: usize, leave_pos: usize, w: &[f64]) {
        let alpha_q = w[leave_pos];
        if alpha_q.abs() < 1e-12 {
            return;
        }
        let gamma_q = self.devex[j].max(1.0);
        let mut rho = vec![0.0; self.m];
        rho[leave_pos] = 1.0;
        self.fact.btran(&mut rho);
        let mut maxw = 1.0f64;
        for k in 0..self.nn {
            if self.status[k] == VStat::Basic || k == j || self.lb[k] == self.ub[k] {
                continue;
            }
            let alpha_k = if k < self.n {
                self.lp.a.col_dot(k, &rho)
            } else {
                -rho[k - self.n]
            };
            if alpha_k != 0.0 {
                let r = alpha_k / alpha_q;
                let cand = r * r * gamma_q;
                if cand > self.devex[k] {
                    self.devex[k] = cand;
                }
            }
            maxw = maxw.max(self.devex[k]);
        }
        let leaving = self.basis[leave_pos];
        self.devex[leaving] = (gamma_q / (alpha_q * alpha_q)).max(1.0);
        if maxw > 1e8 {
            // Weights have drifted far from the reference framework; restart
            // it (the classic Devex reset).
            self.devex.iter_mut().for_each(|g| *g = 1.0);
        }
    }

    /// Whether the current basis is dual-feasible: every nonbasic reduced
    /// cost has the sign its status requires (within a relaxed tolerance).
    fn dual_feasible(&self) -> bool {
        let mut y = vec![0.0; self.m];
        for (i, &j) in self.basis.iter().enumerate() {
            y[i] = self.cost[j];
        }
        self.fact.btran(&mut y);
        let tol = self.cfg.opt_tol * 10.0;
        for j in 0..self.nn {
            let st = self.status[j];
            if st == VStat::Basic || self.lb[j] == self.ub[j] {
                continue;
            }
            let ay = if j < self.n {
                self.lp.a.col_dot(j, &y)
            } else {
                -y[j - self.n]
            };
            let d = self.cost[j] - ay;
            let bad = match st {
                VStat::AtLower => d < -tol,
                VStat::AtUpper => d > tol,
                VStat::Free => d.abs() > tol,
                VStat::Basic => unreachable!(),
            };
            if bad {
                return false;
            }
        }
        true
    }

    /// Dual simplex: starting from a dual-feasible basis whose primal values
    /// violate some bounds (the warm-started child-node case), repeatedly
    /// drops the most violating basic variable (scaled by dual Devex row
    /// weights) and lets a bound-flipping dual ratio test choose the
    /// entering column, until primal feasibility is restored.
    fn iterate_dual(&mut self) -> Result<DualRun, SolveError> {
        let piv_tol = 1e-9;
        let t_feas = self.cfg.feas_tol;
        let mut colbuf: Vec<(usize, f64)> = Vec::new();
        let mut since_recompute = 0usize;
        let mut singular_retries = 0usize;
        loop {
            if let Some(limit) = self.cfg.iter_limit {
                if self.iters >= limit {
                    return Ok(DualRun::Limit);
                }
            }
            if self.iters.is_multiple_of(64) && self.out_of_time() {
                return Ok(DualRun::Limit);
            }
            if self.degenerate_run > Self::STALL_LIMIT {
                return Ok(DualRun::Fallback);
            }
            // Leaving variable: largest violation^2 / devex weight.
            let mut leave: Option<(usize, f64, f64, f64)> = None; // (pos, viol, sigma, score)
            for (i, &bj) in self.basis.iter().enumerate() {
                let v = self.x[bj];
                let (viol, sigma) = if v < self.lb[bj] - t_feas {
                    (self.lb[bj] - v, -1.0)
                } else if v > self.ub[bj] + t_feas {
                    (v - self.ub[bj], 1.0)
                } else {
                    continue;
                };
                let score = viol * viol / self.dual_devex[i];
                if leave.is_none_or(|(_, _, _, s)| score > s) {
                    leave = Some((i, viol, sigma, score));
                }
            }
            let Some((leave_pos, viol, sigma, _)) = leave else {
                return Ok(DualRun::Feasible); // primal feasible
            };
            // Pivot row rho = B^-T e_r and duals y = B^-T c_B; one matrix
            // pass below computes both alpha_j = rho.A_j and d_j.
            let mut rho = vec![0.0; self.m];
            rho[leave_pos] = 1.0;
            self.fact.btran(&mut rho);
            let mut y = vec![0.0; self.m];
            for (i, &bj) in self.basis.iter().enumerate() {
                y[i] = self.cost[bj];
            }
            self.fact.btran(&mut y);
            // Dual ratio test candidates: (ratio, j, abar, d).
            let mut cands: Vec<(f64, usize, f64, f64)> = Vec::new();
            for j in 0..self.nn {
                let st = self.status[j];
                if st == VStat::Basic || self.lb[j] == self.ub[j] {
                    continue;
                }
                let (alpha, ay) = if j < self.n {
                    (self.lp.a.col_dot(j, &rho), self.lp.a.col_dot(j, &y))
                } else {
                    (-rho[j - self.n], -y[j - self.n])
                };
                let abar = sigma * alpha;
                let d = self.cost[j] - ay;
                let eligible = match st {
                    VStat::AtLower => abar > piv_tol,
                    VStat::AtUpper => abar < -piv_tol,
                    VStat::Free => abar.abs() > piv_tol,
                    VStat::Basic => unreachable!(),
                };
                if !eligible {
                    continue;
                }
                let ratio = if abar > 0.0 {
                    d.max(0.0) / abar
                } else {
                    (-d).max(0.0) / (-abar)
                };
                cands.push((ratio, j, abar, d));
            }
            if cands.is_empty() {
                // Dual unbounded: no column can absorb the violation, the
                // primal LP is infeasible.
                return Ok(DualRun::Infeasible);
            }
            let anti_cycle = self.degenerate_run > 200;
            cands.sort_by(|a, b| {
                a.0.partial_cmp(&b.0)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then_with(|| {
                        if anti_cycle {
                            a.1.cmp(&b.1) // Bland-style: lowest index
                        } else {
                            // prefer large pivots for stability
                            b.2.abs()
                                .partial_cmp(&a.2.abs())
                                .unwrap_or(std::cmp::Ordering::Equal)
                        }
                    })
            });
            // Bound-flipping walk: while the remaining violation survives
            // flipping a boxed candidate to its other bound, flip it and
            // keep looking; the blocking candidate enters the basis.
            let mut remaining = viol;
            let mut enter: Option<(usize, f64)> = None; // (j, abar)
            let mut flips: Vec<usize> = Vec::new();
            for &(_, j, abar, _) in &cands {
                let span = self.ub[j] - self.lb[j];
                if span.is_finite() && remaining - span * abar.abs() > t_feas {
                    remaining -= span * abar.abs();
                    flips.push(j);
                } else {
                    enter = Some((j, abar));
                    break;
                }
            }
            let Some((j_enter, _)) = enter else {
                // Every candidate flipped yet violation persists: infeasible.
                return Ok(DualRun::Infeasible);
            };
            // Apply the accumulated bound flips with one aggregated ftran:
            // x_B -= B^-1 (sum_j A_j delta_j).
            if !flips.is_empty() {
                let mut rhs = vec![0.0; self.m];
                for &j in &flips {
                    let (old, new_st) = match self.status[j] {
                        VStat::AtLower => (self.lb[j], VStat::AtUpper),
                        VStat::AtUpper => (self.ub[j], VStat::AtLower),
                        _ => continue, // free variables have no other bound
                    };
                    self.status[j] = new_st;
                    let delta = self.nonbasic_value(j) - old;
                    self.x[j] += delta;
                    if delta != 0.0 {
                        if j < self.n {
                            self.lp.a.axpy_col(j, delta, &mut rhs);
                        } else {
                            rhs[j - self.n] -= delta;
                        }
                    }
                }
                self.fact.ftran(&mut rhs);
                for (i, &bj) in self.basis.iter().enumerate() {
                    self.x[bj] -= rhs[i];
                }
            }
            // Entering column and step length to land the leaving variable
            // exactly on its violated bound.
            self.column(j_enter, &mut colbuf);
            let mut w = vec![0.0; self.m];
            for &(r, v) in &colbuf {
                w[r] = v;
            }
            self.fact.ftran(&mut w);
            if w[leave_pos].abs() < piv_tol {
                // Numerical disagreement between the pivot row and the
                // ftran'd column; refresh the factorization and retry.
                singular_retries += 1;
                if singular_retries > 3 || !self.refactorize() {
                    return Ok(DualRun::Fallback);
                }
                self.compute_basics();
                continue;
            }
            let leaving = self.basis[leave_pos];
            let target = if sigma > 0.0 {
                self.ub[leaving]
            } else {
                self.lb[leaving]
            };
            let dir = match self.status[j_enter] {
                VStat::AtLower => 1.0,
                VStat::AtUpper => -1.0,
                _ => {
                    if (self.x[leaving] - target) / w[leave_pos] >= 0.0 {
                        1.0
                    } else {
                        -1.0
                    }
                }
            };
            let t = ((self.x[leaving] - target) / (dir * w[leave_pos])).max(0.0);
            if t <= 1e-11 && flips.is_empty() {
                self.degenerate_run += 1;
            } else {
                self.degenerate_run = 0;
            }
            self.apply_step(j_enter, dir, t, &w);
            // Dual Devex row-weight update from the entering column (done
            // before the basis swap so weights still index the old basis).
            let alpha_r = w[leave_pos];
            let w_r = self.dual_devex[leave_pos].max(1.0);
            let mut maxw = 1.0f64;
            for (i, &wi) in w.iter().enumerate() {
                if i == leave_pos || wi == 0.0 {
                    continue;
                }
                let r = wi / alpha_r;
                let cand = r * r * w_r;
                if cand > self.dual_devex[i] {
                    self.dual_devex[i] = cand;
                }
                maxw = maxw.max(self.dual_devex[i]);
            }
            self.dual_devex[leave_pos] = (w_r / (alpha_r * alpha_r)).max(1.0);
            if maxw > 1e8 {
                self.dual_devex.iter_mut().for_each(|g| *g = 1.0);
            }
            // Basis swap.
            self.status[leaving] = if sigma > 0.0 {
                VStat::AtUpper
            } else {
                VStat::AtLower
            };
            self.x[leaving] = self.nonbasic_value(leaving);
            self.pos[leaving] = usize::MAX;
            self.basis[leave_pos] = j_enter;
            self.pos[j_enter] = leave_pos;
            self.status[j_enter] = VStat::Basic;
            if self.fact.eta_count() >= self.cfg.refactor_interval
                || self.fact.update(leave_pos, &w).is_err()
            {
                if !self.refactorize() {
                    // Singular after the swap: rebuild the slack basis (it
                    // is not dual-feasible, so hand control to primal).
                    self.slack_resets += 1;
                    if self.slack_resets > 3 {
                        return Err(self
                            .last_lu
                            .clone()
                            .map(SolveError::from)
                            .unwrap_or(SolveError::SingularBasis { position: 0 }));
                    }
                    self.slack_basis();
                    if !self.refactorize() && !self.refactorize() {
                        return Err(self
                            .last_lu
                            .clone()
                            .map(SolveError::from)
                            .unwrap_or(SolveError::SingularBasis { position: 0 }));
                    }
                    self.compute_basics();
                    return Ok(DualRun::Fallback);
                }
                self.compute_basics();
                since_recompute = 0;
            }
            self.iters += 1;
            self.dual_iters += 1;
            since_recompute += 1;
            if since_recompute >= 512 {
                self.compute_basics();
                since_recompute = 0;
                if !self.x.iter().all(|v| v.is_finite()) {
                    return Err(SolveError::NumericBlowup);
                }
            }
        }
    }

    fn out_of_time(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d) || self.cfg.is_cancelled()
    }

    /// Maximum degenerate-pivot run tolerated once Bland's rule is already
    /// active; past this the solve is declared stalled ([`SolveError::Cycling`]).
    const STALL_LIMIT: usize = 5_000;

    /// Runs simplex iterations; `phase1` controls the costs. Returns the
    /// terminating condition from the inner loop, or a [`SolveError`] when
    /// the in-loop safeguards (slack reset, Bland's rule) are exhausted.
    fn iterate(&mut self, phase1: bool) -> Result<LpStatus, SolveError> {
        let mut colbuf: Vec<(usize, f64)> = Vec::new();
        let mut since_recompute = 0usize;
        loop {
            if let Some(limit) = self.cfg.iter_limit {
                if self.iters >= limit {
                    return Ok(LpStatus::Limit);
                }
            }
            if self.iters.is_multiple_of(64) && self.out_of_time() {
                return Ok(LpStatus::Limit);
            }
            if self.degenerate_run > Self::STALL_LIMIT {
                return Err(SolveError::Cycling { iters: self.iters });
            }
            if self.cfg.verbose && self.iters > 0 && self.iters.is_multiple_of(50_000) {
                eprintln!(
                    "[simplex] iter {} phase{} obj {:.6} infeas {:.3e} degen_run {}",
                    self.iters,
                    if phase1 { 1 } else { 2 },
                    self.objective(),
                    self.infeasibility(),
                    self.degenerate_run
                );
            }
            if phase1 && self.infeasibility() <= self.cfg.feas_tol * (1.0 + self.m as f64) {
                return Ok(LpStatus::Optimal); // feasible; caller proceeds to phase 2
            }
            let bland = self.force_bland || self.degenerate_run > 200;
            let (j, dir) = match self.price(phase1, bland) {
                Pricing::Entering { j, dir } => (j, dir),
                Pricing::OptimalOrFeasible => {
                    if phase1 && self.infeasibility() > self.cfg.feas_tol * (1.0 + self.m as f64) {
                        return Ok(LpStatus::Infeasible);
                    }
                    return Ok(LpStatus::Optimal);
                }
            };
            self.column(j, &mut colbuf);
            let mut w = vec![0.0; self.m];
            for &(r, v) in &colbuf {
                w[r] = v;
            }
            self.fact.ftran(&mut w);
            match self.ratio_test(j, dir, &w, phase1, bland) {
                Ratio::Unbounded => {
                    return if phase1 {
                        // cannot happen: phase-1 objective is bounded below by 0;
                        // treat defensively as numerical trouble -> infeasible
                        Ok(LpStatus::Infeasible)
                    } else {
                        Ok(LpStatus::Unbounded)
                    };
                }
                Ratio::BoundFlip { t } => {
                    self.apply_step(j, dir, t, &w);
                    self.status[j] = if dir > 0.0 {
                        VStat::AtUpper
                    } else {
                        VStat::AtLower
                    };
                    self.x[j] = self.nonbasic_value(j);
                    self.degenerate_run = 0;
                }
                Ratio::Pivot { t, leave_pos, leave_to_upper } => {
                    if t <= 1e-11 {
                        self.degenerate_run += 1;
                    } else {
                        self.degenerate_run = 0;
                    }
                    self.apply_step(j, dir, t, &w);
                    if !bland && self.cfg.pricing == PricingRule::Devex {
                        self.update_devex(j, leave_pos, &w);
                    }
                    let leaving = self.basis[leave_pos];
                    self.status[leaving] = if leave_to_upper {
                        VStat::AtUpper
                    } else {
                        VStat::AtLower
                    };
                    self.x[leaving] = self.nonbasic_value(leaving);
                    self.pos[leaving] = usize::MAX;
                    self.basis[leave_pos] = j;
                    self.pos[j] = leave_pos;
                    self.status[j] = VStat::Basic;
                    if self.fact.eta_count() >= self.cfg.refactor_interval
                        || self.fact.update(leave_pos, &w).is_err()
                    {
                        if !self.refactorize() {
                            // numerically singular: rebuild from slack basis
                            if self.cfg.verbose {
                                eprintln!(
                                    "[simplex] singular basis at iter {}; resetting to slack basis",
                                    self.iters
                                );
                            }
                            self.slack_resets += 1;
                            if self.slack_resets > 3 {
                                // persistently singular: surface it; the
                                // solve_lp ladder gets the next rung
                                return Err(self
                                    .last_lu
                                    .clone()
                                    .map(SolveError::from)
                                    .unwrap_or(SolveError::SingularBasis { position: 0 }));
                            }
                            self.slack_basis();
                            if !self.refactorize() && !self.refactorize() {
                                return Err(self
                                    .last_lu
                                    .clone()
                                    .map(SolveError::from)
                                    .unwrap_or(SolveError::SingularBasis { position: 0 }));
                            }
                            self.compute_basics();
                            continue;
                        }
                        self.compute_basics();
                        since_recompute = 0;
                    }
                }
            }
            self.iters += 1;
            if phase1 {
                self.phase1_iters += 1;
            }
            since_recompute += 1;
            if since_recompute >= 512 {
                // periodic accuracy refresh
                self.compute_basics();
                since_recompute = 0;
                if !self.x.iter().all(|v| v.is_finite()) {
                    return Err(SolveError::NumericBlowup);
                }
            }
        }
    }

    fn objective(&self) -> f64 {
        (0..self.n).map(|j| self.cost[j] * self.x[j]).sum()
    }

    fn result(&self, status: LpStatus) -> LpResult {
        // Row duals y = B^{-T} c_B off the final factorization. The slack of
        // row r enters the augmented system as -e_r with zero cost, so its
        // reduced cost is 0 - y^T(-e_r) = y_r; for structural column a_j the
        // reduced cost is c_j - y^T a_j, the form pricing needs.
        let mut y = vec![0.0; self.m];
        for (i, &j) in self.basis.iter().enumerate() {
            y[i] = self.cost[j];
        }
        self.fact.btran(&mut y);
        LpResult {
            status,
            obj: self.objective(),
            x: self.x[..self.n].to_vec(),
            iters: self.iters,
            phase1_iters: self.phase1_iters,
            dual_iters: self.dual_iters,
            statuses: self.status.clone(),
            dj: self.dj[..self.n].to_vec(),
            y,
            recoveries: 0,
        }
    }
}

/// Deterministic hash in `[0, 1)` for seeded cost perturbations.
fn hash01(seed: u64, j: usize) -> f64 {
    let mut x = seed ^ (j as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    (x >> 11) as f64 / (1u64 << 53) as f64
}

/// One rung of the recovery ladder: a complete two-phase solve with optional
/// Bland forcing and seeded cost perturbation.
#[allow(clippy::too_many_arguments)]
fn solve_lp_attempt(
    lp: &LpData,
    var_lb: &[f64],
    var_ub: &[f64],
    cfg: &Config,
    warm: Option<&[VStat]>,
    deadline: Option<Instant>,
    force_bland: bool,
    perturb_seed: Option<u64>,
) -> Result<LpResult, SolveError> {
    let mut eng = Engine::new(lp, var_lb, var_ub, cfg, deadline);
    eng.force_bland = force_bland;
    if let Some(seed) = perturb_seed {
        // Tiny seeded cost jitter breaks the degenerate ties that defeated
        // the earlier rungs; the true objective is recomputed afterwards.
        for j in 0..eng.n {
            let c = eng.cost[j];
            eng.cost[j] = c + 1e-7 * (hash01(seed, j) - 0.5) * (1.0 + c.abs());
        }
    }
    let used_warm = eng.install(warm)?;
    eng.compute_basics();

    let infeas_tol = cfg.feas_tol * (1.0 + eng.m as f64);
    let mut need_phase1 = eng.infeasibility() > infeas_tol;
    // Dual reoptimization: a warm basis that was optimal before a bound
    // change is still dual-feasible, so the dual simplex restores primal
    // feasibility in a few pivots instead of a full primal Phase 1. Only
    // attempted on the clean rung (no Bland forcing, no perturbation); any
    // trouble falls back to the primal path below.
    let try_dual = match cfg.reopt {
        ReoptMode::Primal => false,
        ReoptMode::Auto => used_warm,
        ReoptMode::Dual => true,
    };
    if need_phase1 && try_dual && !force_bland && perturb_seed.is_none() && eng.dual_feasible() {
        match eng.iterate_dual()? {
            DualRun::Feasible => need_phase1 = false,
            DualRun::Infeasible => return Ok(eng.result(LpStatus::Infeasible)),
            DualRun::Limit => return Ok(eng.result(LpStatus::Limit)),
            DualRun::Fallback => need_phase1 = eng.infeasibility() > infeas_tol,
        }
    }
    // Phase 1 if needed.
    if need_phase1 {
        match eng.iterate(true)? {
            LpStatus::Optimal => {}
            s => return Ok(eng.result(s)),
        }
    }
    // Phase 2 (after a successful dual run this certifies optimality in a
    // single pricing pass and captures the reduced costs).
    let status = eng.iterate(false)?;
    let mut r = eng.result(status);
    if perturb_seed.is_some() {
        // Report the unperturbed objective; the perturbed reduced costs are
        // zeroed out so downstream fixing never trusts them.
        r.obj = (0..lp.num_vars()).map(|j| lp.c[j] * r.x[j]).sum();
        r.dj.iter_mut().for_each(|d| *d = 0.0);
        r.y.iter_mut().for_each(|v| *v = 0.0);
    }
    Ok(r)
}

/// Solves the LP given by `lp` with per-call variable bounds.
///
/// `warm` may carry the status vector of a previous solve over the same
/// matrix (e.g. from a parent branch-and-bound node); it is validated and
/// repaired, falling back to the all-slack basis when unusable.
///
/// `deadline` bounds wall-clock time; on expiry the solve returns
/// [`LpStatus::Limit`]. A [`crate::CancelToken`] on `cfg` is honored at the
/// same checkpoints.
///
/// Numerical failures run a three-rung recovery ladder before surfacing: a
/// clean re-solve, a cold-start re-solve under Bland's rule, and a seeded
/// perturb-and-retry. [`LpResult::recoveries`] records how many rungs were
/// consumed; an `Err` means all three failed.
pub fn solve_lp(
    lp: &LpData,
    var_lb: &[f64],
    var_ub: &[f64],
    cfg: &Config,
    warm: Option<&[VStat]>,
    deadline: Option<Instant>,
) -> Result<LpResult, SolveError> {
    // Length mismatches are construction bugs in the caller, not runtime
    // conditions: the branch-and-bound driver always passes vectors sized
    // off this same matrix.
    debug_assert_eq!(var_lb.len(), lp.num_vars());
    debug_assert_eq!(var_ub.len(), lp.num_vars());
    for j in 0..var_lb.len() {
        if var_lb[j] > var_ub[j] {
            // trivially infeasible bounds (possible after branching)
            return Ok(LpResult {
                status: LpStatus::Infeasible,
                obj: f64::INFINITY,
                x: Vec::new(),
                iters: 0,
                phase1_iters: 0,
                dual_iters: 0,
                statuses: Vec::new(),
                dj: Vec::new(),
                y: Vec::new(),
                recoveries: 0,
            });
        }
    }
    let mut last_err = SolveError::NumericBlowup;
    for attempt in 0..3u32 {
        let (w, bland, perturb) = match attempt {
            0 => (warm, false, None),
            // Rung 1: discard the (possibly corrupt) warm basis, force
            // Bland's rule from iteration one.
            1 => (None, true, None),
            // Rung 2: additionally perturb costs to break degeneracy.
            _ => (None, true, Some(cfg.seed ^ 0xFA17)),
        };
        match solve_lp_attempt(lp, var_lb, var_ub, cfg, w, deadline, bland, perturb) {
            Ok(mut r) => {
                r.recoveries = attempt as usize;
                return Ok(r);
            }
            Err(e) => last_err = e,
        }
    }
    Err(last_err)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::TripletBuilder;

    /// Test row: sparse coefficients plus `[lb, ub]` range.
    type TestRow<'a> = (&'a [(usize, f64)], f64, f64);

    fn lp(rows: &[TestRow], nvars: usize, c: &[f64]) -> LpData {
        let mut b = TripletBuilder::new(rows.len(), nvars);
        let mut row_lb = Vec::new();
        let mut row_ub = Vec::new();
        for (ri, (coefs, lo, hi)) in rows.iter().enumerate() {
            for &(j, v) in *coefs {
                b.push(ri, j, v);
            }
            row_lb.push(*lo);
            row_ub.push(*hi);
        }
        LpData {
            a: b.build(),
            c: c.to_vec(),
            row_lb,
            row_ub,
        }
    }

    const INF: f64 = f64::INFINITY;

    #[test]
    fn simple_min() {
        // min x + y  s.t. x + y >= 2, x,y in [0, 10]
        let data = lp(&[(&[(0, 1.0), (1, 1.0)], 2.0, INF)], 2, &[1.0, 1.0]);
        let r = solve_lp(&data, &[0.0, 0.0], &[10.0, 10.0], &Config::default(), None, None).unwrap();
        assert_eq!(r.status, LpStatus::Optimal);
        assert!((r.obj - 2.0).abs() < 1e-7, "obj = {}", r.obj);
    }

    #[test]
    fn classic_max_as_min() {
        // max 3x + 2y s.t. x + y <= 4, x + 3y <= 6 => min -3x -2y; opt at (4,0) = -12
        let data = lp(
            &[
                (&[(0, 1.0), (1, 1.0)], -INF, 4.0),
                (&[(0, 1.0), (1, 3.0)], -INF, 6.0),
            ],
            2,
            &[-3.0, -2.0],
        );
        let r = solve_lp(&data, &[0.0, 0.0], &[INF, INF], &Config::default(), None, None).unwrap();
        assert_eq!(r.status, LpStatus::Optimal);
        assert!((r.obj + 12.0).abs() < 1e-7, "obj = {}", r.obj);
        assert!((r.x[0] - 4.0).abs() < 1e-7);
        assert!(r.x[1].abs() < 1e-7);
    }

    #[test]
    fn equality_rows() {
        // min 2x + 3y s.t. x + y == 5, x - y == 1 -> x=3, y=2, obj 12
        let data = lp(
            &[
                (&[(0, 1.0), (1, 1.0)], 5.0, 5.0),
                (&[(0, 1.0), (1, -1.0)], 1.0, 1.0),
            ],
            2,
            &[2.0, 3.0],
        );
        let r = solve_lp(&data, &[0.0, 0.0], &[INF, INF], &Config::default(), None, None).unwrap();
        assert_eq!(r.status, LpStatus::Optimal);
        assert!((r.obj - 12.0).abs() < 1e-7, "obj = {}", r.obj);
        assert!((r.x[0] - 3.0).abs() < 1e-7);
        assert!((r.x[1] - 2.0).abs() < 1e-7);
    }

    #[test]
    fn duals_satisfy_reduced_cost_identity() {
        // max 3x + 2y s.t. x + y <= 4, x + 3y <= 6 => min -3x - 2y.
        // Optimum (4, 0): row 0 binds (y0 = -3), row 1 is slack (y1 = 0).
        let data = lp(
            &[
                (&[(0, 1.0), (1, 1.0)], -INF, 4.0),
                (&[(0, 1.0), (1, 3.0)], -INF, 6.0),
            ],
            2,
            &[-3.0, -2.0],
        );
        let r = solve_lp(&data, &[0.0, 0.0], &[INF, INF], &Config::default(), None, None).unwrap();
        assert_eq!(r.status, LpStatus::Optimal);
        assert_eq!(r.y.len(), 2);
        assert!((r.y[0] + 3.0).abs() < 1e-7, "y = {:?}", r.y);
        assert!(r.y[1].abs() < 1e-7, "y = {:?}", r.y);
        // Reduced-cost identity c_j - y^T a_j for both structural columns.
        for j in 0..2 {
            let rc = data.c[j] - data.a.col_dot(j, &r.y);
            if (r.x[j]).abs() > 1e-7 {
                assert!(rc.abs() < 1e-7, "basic column rc = {rc}");
            } else {
                assert!(rc > -1e-7, "nonbasic column rc = {rc}");
            }
        }
    }

    #[test]
    fn append_cols_warm_reoptimizes() {
        // Start from the classic max LP, then price in a dominant column.
        let mut data = lp(
            &[
                (&[(0, 1.0), (1, 1.0)], -INF, 4.0),
                (&[(0, 1.0), (1, 3.0)], -INF, 6.0),
            ],
            2,
            &[-3.0, -2.0],
        );
        let cfg = Config::default();
        let r = solve_lp(&data, &[0.0, 0.0], &[INF, INF], &cfg, None, None).unwrap();
        assert_eq!(r.status, LpStatus::Optimal);
        // New column z: cost -5, enters row 0 only. rc = -5 - y0 = -2 < 0.
        let rc = -5.0 - r.y[0];
        assert!(rc < 0.0, "appended column should be improving, rc = {rc}");
        data.append_cols(&[(vec![(0, 1.0)], -5.0)]);
        assert_eq!(data.num_vars(), 3);
        // Splice the warm statuses: old structurals, new col at lower bound,
        // then the untouched slack block.
        let mut warm = r.statuses[..2].to_vec();
        warm.push(VStat::AtLower);
        warm.extend_from_slice(&r.statuses[2..]);
        let r2 = solve_lp(
            &data,
            &[0.0, 0.0, 0.0],
            &[INF, INF, INF],
            &cfg,
            Some(&warm),
            None,
        )
        .unwrap();
        assert_eq!(r2.status, LpStatus::Optimal);
        // Optimum moves to z = 4: obj = -20.
        assert!((r2.obj + 20.0).abs() < 1e-7, "obj = {}", r2.obj);
        assert!((r2.x[2] - 4.0).abs() < 1e-7, "x = {:?}", r2.x);
    }

    #[test]
    fn infeasible_detected() {
        // x >= 3 and x <= 1
        let data = lp(
            &[
                (&[(0, 1.0)], 3.0, INF),
                (&[(0, 1.0)], -INF, 1.0),
            ],
            1,
            &[1.0],
        );
        let r = solve_lp(&data, &[0.0], &[INF], &Config::default(), None, None).unwrap();
        assert_eq!(r.status, LpStatus::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        // min -x, x >= 0, no upper limit
        let data = lp(&[(&[(0, 1.0)], 0.0, INF)], 1, &[-1.0]);
        let r = solve_lp(&data, &[0.0], &[INF], &Config::default(), None, None).unwrap();
        assert_eq!(r.status, LpStatus::Unbounded);
    }

    #[test]
    fn free_variable() {
        // min x s.t. x >= -5 via row (free var bounds)
        let data = lp(&[(&[(0, 1.0)], -5.0, INF)], 1, &[1.0]);
        let r = solve_lp(&data, &[-INF], &[INF], &Config::default(), None, None).unwrap();
        assert_eq!(r.status, LpStatus::Optimal);
        assert!((r.obj + 5.0).abs() < 1e-7, "obj = {}", r.obj);
    }

    #[test]
    fn negative_lower_bounds() {
        // min x + y, x in [-3, 3], y in [-2, 2], x + y >= -4
        let data = lp(&[(&[(0, 1.0), (1, 1.0)], -4.0, INF)], 2, &[1.0, 1.0]);
        let r = solve_lp(&data, &[-3.0, -2.0], &[3.0, 2.0], &Config::default(), None, None).unwrap();
        assert_eq!(r.status, LpStatus::Optimal);
        assert!((r.obj + 4.0).abs() < 1e-7, "obj = {}", r.obj);
    }

    #[test]
    fn range_rows() {
        // min x, 2 <= x + y <= 6, y in [0, 1] -> x >= 1 when y at most 1
        let data = lp(&[(&[(0, 1.0), (1, 1.0)], 2.0, 6.0)], 2, &[1.0, 0.0]);
        let r = solve_lp(&data, &[0.0, 0.0], &[INF, 1.0], &Config::default(), None, None).unwrap();
        assert_eq!(r.status, LpStatus::Optimal);
        assert!((r.obj - 1.0).abs() < 1e-7, "obj = {}", r.obj);
    }

    #[test]
    fn warm_start_after_bound_change() {
        // min -x - y, x + y <= 4, x,y in [0,3]; opt 4 at e.g. (3,1)
        let data = lp(&[(&[(0, 1.0), (1, 1.0)], -INF, 4.0)], 2, &[-1.0, -1.0]);
        let r1 = solve_lp(&data, &[0.0, 0.0], &[3.0, 3.0], &Config::default(), None, None).unwrap();
        assert_eq!(r1.status, LpStatus::Optimal);
        assert!((r1.obj + 4.0).abs() < 1e-7);
        // Tighten x <= 1 and warm start: optimum becomes -1 - 3 = ... x+y<=4
        // with x<=1, y<=3 -> obj -4 still (1+3). Tighten y <= 1 too -> -2.
        let r2 = solve_lp(
            &data,
            &[0.0, 0.0],
            &[1.0, 1.0],
            &Config::default(),
            Some(&r1.statuses),
            None,
        )
        .unwrap();
        assert_eq!(r2.status, LpStatus::Optimal);
        assert!((r2.obj + 2.0).abs() < 1e-7, "obj = {}", r2.obj);
    }

    #[test]
    fn fixed_variables() {
        // x fixed at 2, min y with y >= x
        let data = lp(&[(&[(1, 1.0), (0, -1.0)], 0.0, INF)], 2, &[0.0, 1.0]);
        let r = solve_lp(&data, &[2.0, 0.0], &[2.0, INF], &Config::default(), None, None).unwrap();
        assert_eq!(r.status, LpStatus::Optimal);
        assert!((r.obj - 2.0).abs() < 1e-7, "obj = {}", r.obj);
        assert!((r.x[0] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_lp_terminates() {
        // Many redundant constraints through the same vertex.
        let data = lp(
            &[
                (&[(0, 1.0), (1, 1.0)], -INF, 1.0),
                (&[(0, 2.0), (1, 2.0)], -INF, 2.0),
                (&[(0, 1.0)], -INF, 1.0),
                (&[(1, 1.0)], -INF, 1.0),
                (&[(0, 3.0), (1, 3.0)], -INF, 3.0),
            ],
            2,
            &[-1.0, -1.0],
        );
        let r = solve_lp(&data, &[0.0, 0.0], &[INF, INF], &Config::default(), None, None).unwrap();
        assert_eq!(r.status, LpStatus::Optimal);
        assert!((r.obj + 1.0).abs() < 1e-7, "obj = {}", r.obj);
    }

    #[test]
    fn larger_random_lps_match_feasibility() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..20 {
            let n = rng.gen_range(2..6);
            let m = rng.gen_range(1..5);
            let mut b = TripletBuilder::new(m, n);
            let mut row_lb = vec![0.0; m];
            let mut row_ub = vec![0.0; m];
            for r in 0..m {
                for j in 0..n {
                    if rng.gen_bool(0.7) {
                        b.push(r, j, rng.gen_range(-2.0..2.0));
                    }
                }
                let c = rng.gen_range(-3.0..3.0);
                row_lb[r] = -INF;
                row_ub[r] = c;
            }
            let c: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let data = LpData {
                a: b.build(),
                c,
                row_lb,
                row_ub,
            };
            let lo = vec![0.0; n];
            let hi = vec![5.0; n];
            let r = solve_lp(&data, &lo, &hi, &Config::default(), None, None).unwrap();
            // Bounded box + <= rows: never unbounded; x=0 may violate rows
            // with negative ub, so infeasible is possible but solution, when
            // claimed optimal, must verify.
            if r.status == LpStatus::Optimal {
                let act = data.a.mul_vec(&r.x);
                for (ri, (&lo, &hi)) in data.row_lb.iter().zip(&data.row_ub).enumerate() {
                    assert!(
                        act[ri] >= lo - 1e-6 && act[ri] <= hi + 1e-6,
                        "row {} violated",
                        ri
                    );
                }
            }
            assert_ne!(r.status, LpStatus::Unbounded);
        }
    }

    #[test]
    fn append_rows_extends_lp_and_warm_start() {
        // min -x - y s.t. x + y <= 4; then append x <= 1.5 as an extra row
        // and reoptimize from the old basis padded with one Basic slack.
        let mut data = lp(&[(&[(0, 1.0), (1, 1.0)], -INF, 4.0)], 2, &[-1.0, -1.0]);
        let cfg = Config::default();
        let r = solve_lp(&data, &[0.0, 0.0], &[INF, INF], &cfg, None, None).unwrap();
        assert_eq!(r.status, LpStatus::Optimal);
        assert!((r.obj + 4.0).abs() < 1e-7);

        data.append_rows(&[(vec![(0, 1.0)], -INF, 1.5)]);
        assert_eq!(data.num_rows(), 2);
        let mut warm = r.statuses.clone();
        warm.push(VStat::Basic);
        let r2 = solve_lp(&data, &[0.0, 0.0], &[INF, INF], &cfg, Some(&warm), None).unwrap();
        assert_eq!(r2.status, LpStatus::Optimal);
        assert!((r2.obj + 4.0).abs() < 1e-7, "obj = {}", r2.obj);
        assert!(r2.x[0] <= 1.5 + 1e-7);
    }

    #[test]
    fn tableau_rows_reproduce_basic_values() {
        // max x + y s.t. 2x + 3y <= 12, 3x + 2y <= 12 -> x = y = 2.4 basic.
        let data = lp(
            &[
                (&[(0, 2.0), (1, 3.0)], -INF, 12.0),
                (&[(0, 3.0), (1, 2.0)], -INF, 12.0),
            ],
            2,
            &[-1.0, -1.0],
        );
        let cfg = Config::default();
        let r = solve_lp(&data, &[0.0, 0.0], &[INF, INF], &cfg, None, None).unwrap();
        assert_eq!(r.status, LpStatus::Optimal);
        let rows = extract_tableau_rows(&data, &[0.0, 0.0], &[INF, INF], &cfg, &r.statuses, &[0, 1])
            .expect("basis reinstalls");
        assert_eq!(rows.len(), 2);
        for row in &rows {
            assert!((row.rhs - 2.4).abs() < 1e-7, "rhs = {}", row.rhs);
            // Zero-rhs identity: x_var = -sum coefs * z_nb, with both slacks
            // nonbasic at their upper bound 12.
            let nb_sum: f64 = row.coefs.iter().map(|&(_, a)| a * 12.0).sum();
            assert!(
                (r.x[row.var] + nb_sum).abs() < 1e-7,
                "row identity violated for var {}",
                row.var
            );
        }
    }

    #[test]
    fn tableau_rows_reject_bad_statuses() {
        let data = lp(&[(&[(0, 1.0)], -INF, 3.0)], 1, &[-1.0]);
        let cfg = Config::default();
        // Wrong length: must refuse rather than silently use the slack basis.
        assert!(extract_tableau_rows(&data, &[0.0], &[INF], &cfg, &[VStat::Basic], &[0]).is_none());
    }
}
