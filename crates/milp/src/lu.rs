//! Sparse LU factorization of the simplex basis, with product-form (eta)
//! updates.
//!
//! The factorization follows the Gilbert–Peierls left-looking scheme with
//! partial pivoting: basis columns are eliminated one at a time, producing a
//! sequence of elementary transformations `E_k = I - l_k e_{p_k}^T` (the "L
//! part") and an upper-triangular matrix `U` in pivot coordinates, such that
//! `E_{m-1} .. E_0 B = U_P`. Basis changes between refactorizations are
//! absorbed as product-form eta matrices.
//!
//! Callers use [`Factorization::factorize`] to build the decomposition,
//! [`Factorization::ftran`]/[`Factorization::btran`] for the two solve
//! directions, and [`Factorization::update`] after each basis change.

use crate::sparse::SparseVec;

/// Error raised when a basis cannot be factorized or updated.
#[derive(Debug, Clone, PartialEq)]
pub enum LuError {
    /// No acceptable pivot was found while eliminating the given basis
    /// position: the basis matrix is (numerically) singular.
    Singular { position: usize },
    /// An eta update had a pivot element too close to zero.
    UnstableUpdate { position: usize },
}

impl std::fmt::Display for LuError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LuError::Singular { position } => {
                write!(f, "singular basis at position {}", position)
            }
            LuError::UnstableUpdate { position } => {
                write!(f, "numerically unstable eta update at position {}", position)
            }
        }
    }
}

impl std::error::Error for LuError {}

/// One elementary elimination `E_k = I - l_k e_{p_k}^T`.
#[derive(Debug, Clone, Default)]
struct EliminationCol {
    /// Multiplier entries `(row, l)` on rows that were non-pivotal at step k.
    entries: Vec<(usize, f64)>,
}

/// One column of `U` in pivot coordinates.
#[derive(Debug, Clone, Default)]
struct UpperCol {
    /// Off-diagonal entries `(pivot_step, value)` with `pivot_step < k`.
    entries: Vec<(usize, f64)>,
    /// Diagonal value `u_kk` (the chosen pivot magnitude).
    diag: f64,
}

/// A product-form eta transformation recording one basis column replacement.
#[derive(Debug, Clone)]
struct Eta {
    /// Basis position whose column was replaced.
    q: usize,
    /// Sparse entries of `w = B^{-1} a_new`, excluding position `q`.
    entries: Vec<(usize, f64)>,
    /// `w[q]`, the pivot element of the update.
    wq: f64,
}

/// Sparse LU factorization of a square basis matrix with eta updates.
#[derive(Debug)]
pub struct Factorization {
    m: usize,
    lower: Vec<EliminationCol>,
    upper: Vec<UpperCol>,
    /// `pivot_row[k]` = original row chosen as pivot at step `k`.
    pivot_row: Vec<usize>,
    /// `col_order[k]` = original basis position of the column eliminated at
    /// step `k` (columns are processed sparsest-first to curb fill-in).
    col_order: Vec<usize>,
    etas: Vec<Eta>,
    work: SparseVec,
    drop_tol: f64,
    pivot_tol: f64,
}

impl Factorization {
    /// Creates an empty factorization for an `m x m` basis.
    pub fn new(m: usize) -> Self {
        Factorization {
            m,
            lower: Vec::new(),
            upper: Vec::new(),
            pivot_row: Vec::new(),
            col_order: Vec::new(),
            etas: Vec::new(),
            work: SparseVec::zeros(m),
            drop_tol: 1e-12,
            pivot_tol: 1e-10,
        }
    }

    /// Dimension of the basis.
    pub fn dim(&self) -> usize {
        self.m
    }

    /// Number of eta updates accumulated since the last refactorization.
    pub fn eta_count(&self) -> usize {
        self.etas.len()
    }

    /// Total stored nonzeros in L and U (a fill-in diagnostic).
    pub fn fill_nnz(&self) -> usize {
        let l: usize = self.lower.iter().map(|c| c.entries.len()).sum();
        let u: usize = self.upper.iter().map(|c| c.entries.len() + 1).sum();
        l + u
    }

    /// Factorizes the basis whose column at position `k` is produced by
    /// `get_col(k, &mut buf)` as `(row, value)` pairs (any order, no
    /// duplicates). Discards any previous factorization and eta updates.
    ///
    /// # Errors
    ///
    /// Returns [`LuError::Singular`] if at some elimination step every
    /// remaining candidate pivot is below the pivot tolerance.
    pub fn factorize<F>(&mut self, mut get_col: F) -> Result<(), LuError>
    where
        F: FnMut(usize, &mut Vec<(usize, f64)>),
    {
        let m = self.m;
        self.lower.clear();
        self.lower.resize(m, EliminationCol::default());
        self.upper.clear();
        self.upper.resize(m, UpperCol::default());
        self.pivot_row.clear();
        self.pivot_row.resize(m, usize::MAX);
        self.etas.clear();

        // Collect all columns, then eliminate sparsest-first: unit (slack)
        // columns pivot without fill, leaving a small dense core. The
        // processing permutation is tracked in `col_order`.
        let mut cols: Vec<Vec<(usize, f64)>> = Vec::with_capacity(m);
        let mut colbuf: Vec<(usize, f64)> = Vec::new();
        for k in 0..m {
            colbuf.clear();
            get_col(k, &mut colbuf);
            cols.push(colbuf.clone());
        }
        self.col_order = (0..m).collect();
        self.col_order.sort_by_key(|&k| cols[k].len());

        // row_step[r] = elimination step at which row r became pivotal.
        let mut row_step = vec![usize::MAX; m];
        // Worklist of elimination steps to apply, processed in increasing
        // step order; `queued` dedups. This keeps each column's cost
        // proportional to the steps actually touched instead of O(k).
        let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<usize>> =
            std::collections::BinaryHeap::new();
        let mut queued = vec![false; m];

        for k in 0..m {
            let orig = self.col_order[k];
            self.work.clear();
            heap.clear();
            for &(r, v) in &cols[orig] {
                debug_assert!(r < m);
                self.work.add(r, v);
                let step = row_step[r];
                if step != usize::MAX && !queued[step] {
                    queued[step] = true;
                    heap.push(std::cmp::Reverse(step));
                }
            }
            // Apply prior eliminations in increasing pivot order; L_j only
            // touches rows that were non-pivotal at step j (their steps are
            // > j), so newly reached pivotal rows can be pushed safely.
            while let Some(std::cmp::Reverse(j)) = heap.pop() {
                queued[j] = false;
                let pj = self.pivot_row[j];
                let xpj = self.work.get(pj);
                if xpj.abs() > self.drop_tol {
                    for idx in 0..self.lower[j].entries.len() {
                        let (r, l) = self.lower[j].entries[idx];
                        self.work.add(r, -l * xpj);
                        let step = row_step[r];
                        if step != usize::MAX && !queued[step] {
                            debug_assert!(step > j);
                            queued[step] = true;
                            heap.push(std::cmp::Reverse(step));
                        }
                    }
                }
            }
            // Partition into U entries (pivotal rows) and pivot candidates.
            let mut best_row = usize::MAX;
            let mut best_val = 0.0f64;
            for (r, v) in self.work.iter_above(self.drop_tol) {
                if row_step[r] == usize::MAX && v.abs() > best_val.abs() {
                    best_val = v;
                    best_row = r;
                }
            }
            if best_row == usize::MAX || best_val.abs() < self.pivot_tol {
                return Err(LuError::Singular { position: orig });
            }
            let d = best_val;
            let mut ucol = UpperCol {
                entries: Vec::new(),
                diag: d,
            };
            let mut lcol = EliminationCol {
                entries: Vec::new(),
            };
            for (r, v) in self.work.iter_above(self.drop_tol) {
                if r == best_row {
                    continue;
                }
                match row_step[r] {
                    usize::MAX => lcol.entries.push((r, v / d)),
                    j => ucol.entries.push((j, v)),
                }
            }
            row_step[best_row] = k;
            self.pivot_row[k] = best_row;
            self.upper[k] = ucol;
            self.lower[k] = lcol;
        }
        Ok(())
    }

    /// Solves `B x = b` in place: on entry `buf` holds `b` (dense, length m);
    /// on exit it holds `x` indexed by **basis position**.
    pub fn ftran(&self, buf: &mut [f64]) {
        debug_assert_eq!(buf.len(), self.m);
        // y = E b (apply eliminations in order).
        for k in 0..self.m {
            let xp = buf[self.pivot_row[k]];
            if xp != 0.0 {
                for &(r, l) in &self.lower[k].entries {
                    buf[r] -= l * xp;
                }
            }
        }
        // Solve U_P x = y backward; component k belongs to the basis column
        // processed at step k, i.e. original position col_order[k].
        let mut x = vec![0.0; self.m];
        for k in (0..self.m).rev() {
            let pk = self.pivot_row[k];
            let xk = buf[pk] / self.upper[k].diag;
            x[self.col_order[k]] = xk;
            if xk != 0.0 {
                for &(j, u) in &self.upper[k].entries {
                    buf[self.pivot_row[j]] -= u * xk;
                }
            }
        }
        buf.copy_from_slice(&x);
        // Apply eta inverses in order of creation.
        for eta in &self.etas {
            let t = buf[eta.q] / eta.wq;
            if t != 0.0 {
                for &(j, w) in &eta.entries {
                    buf[j] -= w * t;
                }
            }
            buf[eta.q] = t;
        }
    }

    /// Solves `B^T x = b` in place: on entry `buf` holds `b` indexed by
    /// **basis position**; on exit it holds `x` in original row space.
    pub fn btran(&self, buf: &mut [f64]) {
        debug_assert_eq!(buf.len(), self.m);
        // Undo etas in reverse creation order (transposed inverses).
        for eta in self.etas.iter().rev() {
            let mut acc = buf[eta.q];
            for &(j, w) in &eta.entries {
                acc -= w * buf[j];
            }
            buf[eta.q] = acc / eta.wq;
        }
        // Solve U_P^T w = b forward (w indexed by pivot step; the rhs entry
        // of step k lives at original basis position col_order[k]).
        let mut w = vec![0.0; self.m];
        for k in 0..self.m {
            let mut acc = buf[self.col_order[k]];
            for &(j, u) in &self.upper[k].entries {
                acc -= u * w[j];
            }
            w[k] = acc / self.upper[k].diag;
        }
        // x = E^T w: scatter w to pivot rows, then apply E_k^T backward.
        let mut x = vec![0.0; self.m];
        for k in 0..self.m {
            x[self.pivot_row[k]] = w[k];
        }
        for k in (0..self.m).rev() {
            let mut acc = x[self.pivot_row[k]];
            for &(r, l) in &self.lower[k].entries {
                acc -= l * x[r];
            }
            x[self.pivot_row[k]] = acc;
        }
        buf.copy_from_slice(&x);
    }

    /// Records the replacement of the basis column at position `q`, given
    /// `w = B^{-1} a_new` (the ftran of the entering column, indexed by basis
    /// position, as computed *before* the update).
    ///
    /// # Errors
    ///
    /// Returns [`LuError::UnstableUpdate`] if `|w[q]|` is below the pivot
    /// tolerance; the caller should refactorize instead.
    pub fn update(&mut self, q: usize, w: &[f64]) -> Result<(), LuError> {
        debug_assert_eq!(w.len(), self.m);
        let wq = w[q];
        if wq.abs() < self.pivot_tol {
            return Err(LuError::UnstableUpdate { position: q });
        }
        let entries: Vec<(usize, f64)> = w
            .iter()
            .enumerate()
            .filter(|&(j, &v)| j != q && v.abs() > self.drop_tol)
            .map(|(j, &v)| (j, v))
            .collect();
        self.etas.push(Eta { q, entries, wq });
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a column getter from a dense row-major matrix.
    fn dense_cols(a: &[Vec<f64>]) -> impl FnMut(usize, &mut Vec<(usize, f64)>) + '_ {
        move |k: usize, buf: &mut Vec<(usize, f64)>| {
            for (r, row) in a.iter().enumerate() {
                if row[k] != 0.0 {
                    buf.push((r, row[k]));
                }
            }
        }
    }

    fn dense_mul(a: &[Vec<f64>], x: &[f64]) -> Vec<f64> {
        a.iter()
            .map(|row| row.iter().zip(x).map(|(r, v)| r * v).sum())
            .collect()
    }

    fn dense_mul_t(a: &[Vec<f64>], x: &[f64]) -> Vec<f64> {
        let n = a[0].len();
        (0..n)
            .map(|j| a.iter().zip(x).map(|(row, v)| row[j] * v).sum())
            .collect()
    }

    fn assert_close(a: &[f64], b: &[f64]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < 1e-8, "{:?} != {:?}", a, b);
        }
    }

    #[test]
    fn identity_solves() {
        let a = vec![
            vec![1.0, 0.0, 0.0],
            vec![0.0, 1.0, 0.0],
            vec![0.0, 0.0, 1.0],
        ];
        let mut f = Factorization::new(3);
        f.factorize(dense_cols(&a)).unwrap();
        let mut b = vec![3.0, -1.0, 2.0];
        f.ftran(&mut b);
        assert_close(&b, &[3.0, -1.0, 2.0]);
        f.btran(&mut b);
        assert_close(&b, &[3.0, -1.0, 2.0]);
    }

    #[test]
    fn ftran_solves_small_system() {
        let a = vec![vec![2.0, 1.0], vec![1.0, 3.0]];
        let mut f = Factorization::new(2);
        f.factorize(dense_cols(&a)).unwrap();
        let b = vec![5.0, 10.0];
        let mut x = b.clone();
        f.ftran(&mut x);
        assert_close(&dense_mul(&a, &x), &b);
    }

    #[test]
    fn btran_solves_small_system() {
        let a = vec![vec![2.0, 1.0], vec![1.0, 3.0]];
        let mut f = Factorization::new(2);
        f.factorize(dense_cols(&a)).unwrap();
        let b = vec![4.0, -2.0];
        let mut x = b.clone();
        f.btran(&mut x);
        assert_close(&dense_mul_t(&a, &x), &b);
    }

    #[test]
    fn permuted_identity_needs_pivoting() {
        let a = vec![
            vec![0.0, 0.0, 5.0],
            vec![2.0, 0.0, 0.0],
            vec![0.0, -1.0, 0.0],
        ];
        let mut f = Factorization::new(3);
        f.factorize(dense_cols(&a)).unwrap();
        let b = vec![10.0, 4.0, 3.0];
        let mut x = b.clone();
        f.ftran(&mut x);
        assert_close(&dense_mul(&a, &x), &b);
        let mut y = b.clone();
        f.btran(&mut y);
        assert_close(&dense_mul_t(&a, &y), &b);
    }

    #[test]
    fn singular_detected() {
        let a = vec![vec![1.0, 2.0], vec![2.0, 4.0]];
        let mut f = Factorization::new(2);
        assert!(matches!(
            f.factorize(dense_cols(&a)),
            Err(LuError::Singular { .. })
        ));
    }

    #[test]
    fn random_dense_roundtrip() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(42);
        for trial in 0..30 {
            let m = 1 + (trial % 8);
            let a: Vec<Vec<f64>> = (0..m)
                .map(|i| {
                    (0..m)
                        .map(|j| {
                            let v: f64 = rng.gen_range(-3.0..3.0);
                            // diagonal boost keeps matrices comfortably nonsingular
                            if i == j {
                                v + 5.0
                            } else if rng.gen_bool(0.4) {
                                0.0
                            } else {
                                v
                            }
                        })
                        .collect()
                })
                .collect();
            let mut f = Factorization::new(m);
            f.factorize(dense_cols(&a)).unwrap();
            let b: Vec<f64> = (0..m).map(|_| rng.gen_range(-5.0..5.0)).collect();
            let mut x = b.clone();
            f.ftran(&mut x);
            assert_close(&dense_mul(&a, &x), &b);
            let mut y = b.clone();
            f.btran(&mut y);
            assert_close(&dense_mul_t(&a, &y), &b);
        }
    }

    #[test]
    fn eta_update_matches_refactorization() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(7);
        let m = 5;
        let mut a: Vec<Vec<f64>> = (0..m)
            .map(|i| {
                (0..m)
                    .map(|j| if i == j { 4.0 } else { rng.gen_range(-1.0..1.0) })
                    .collect()
            })
            .collect();
        let mut f = Factorization::new(m);
        f.factorize(dense_cols(&a)).unwrap();

        // Replace column 2 with a fresh column.
        let newcol: Vec<f64> = (0..m).map(|_| rng.gen_range(-2.0..2.0)).collect();
        let mut w = newcol.clone();
        f.ftran(&mut w);
        f.update(2, &w).unwrap();
        for (i, row) in a.iter_mut().enumerate() {
            row[2] = newcol[i];
        }

        let b: Vec<f64> = (0..m).map(|_| rng.gen_range(-5.0..5.0)).collect();
        let mut x = b.clone();
        f.ftran(&mut x);
        assert_close(&dense_mul(&a, &x), &b);
        let mut y = b.clone();
        f.btran(&mut y);
        assert_close(&dense_mul_t(&a, &y), &b);

        // A second update on a different position.
        let newcol2: Vec<f64> = (0..m).map(|_| rng.gen_range(-2.0..2.0)).collect();
        let mut w2 = newcol2.clone();
        f.ftran(&mut w2);
        f.update(0, &w2).unwrap();
        for (i, row) in a.iter_mut().enumerate() {
            row[0] = newcol2[i];
        }
        let mut x2 = b.clone();
        f.ftran(&mut x2);
        assert_close(&dense_mul(&a, &x2), &b);
        let mut y2 = b.clone();
        f.btran(&mut y2);
        assert_close(&dense_mul_t(&a, &y2), &b);
        assert_eq!(f.eta_count(), 2);
    }

    #[test]
    fn unstable_update_rejected() {
        let a = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        let mut f = Factorization::new(2);
        f.factorize(dense_cols(&a)).unwrap();
        let w = vec![1.0, 0.0]; // w[1] == 0 -> replacing column 1 is singular
        assert!(matches!(
            f.update(1, &w),
            Err(LuError::UnstableUpdate { .. })
        ));
    }
}
