#!/usr/bin/env bash
# Tier-1 gate: everything that must stay green on every commit.
#
#   1. release build of the whole workspace
#   2. the root package test suite (fast determinism + integration tests)
#   3. clippy on every target with warnings promoted to errors
#
# Run from the repository root:  ./scripts/tier1.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier1: cargo build --release =="
cargo build --release

echo "== tier1: cargo test -q =="
cargo test -q

echo "== tier1: fault injection (seeded solver recovery paths) =="
cargo test -q -p milp --test fault_injection

echo "== tier1: degradation ladder =="
cargo test -q -p archex ladder

echo "== tier1: cargo clippy --workspace -- -D warnings =="
cargo clippy --workspace --all-targets -- -D warnings

echo "tier1: OK"
