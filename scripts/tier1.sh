#!/usr/bin/env bash
# Tier-1 gate: everything that must stay green on every commit.
#
#   1. release build of the whole workspace
#   2. the root package test suite (fast determinism + integration tests)
#   3. clippy on every target with warnings promoted to errors
#   4. perf smoke: the Table 3 [50/20] row must yield a feasible design
#      within a 30 s solver budget (warns when short of Optimal)
#   5. cuts smoke: root separation must apply cuts on that row and must
#      not degrade the solve status vs cuts-off
#   6. pricing smoke: branch-and-price from a two-candidate seed must
#      price columns on that row and deliver a verified feasible design
#      within the budget; when both sides prove optimality the priced
#      objective must match or beat the plain one (priced bundles
#      recombine link-universe edges into paths the Yen truncation never
#      saw, so the design may beat K* = 10 while the optimality proof
#      over the larger space lags — that regime only warns)
#   7. checkpoint smoke: the [50/20] ckpt_on run must write frames, and
#      its wall-time overhead vs ckpt_off only warns past 5% (wall time
#      swings ~2x run-to-run on this row)
#   8. heuristic smoke: the [50/20] heur_on run gets a 10 s budget and
#      must still deliver a verified feasible design through the LNS +
#      tabu primal engine (LimitFeasible is fine; the engine exists
#      precisely so a truncated run has something good to return), and
#      enabling the engine must not degrade the final status vs heur_off
#   9. durability smoke: a checkpointed [50/20] solve is SIGKILLed
#      mid-search, resumed from its frame, and must deliver a verified
#      design that matches or beats the uninterrupted reference when
#      both prove optimality
#  10. service smoke: a short request storm against the design-session
#      service with seeded clients, injected mid-request cancellations,
#      a simulated worker death, and one poisoned delta — the binary
#      itself exits non-zero on any panic, any missed deadline without a
#      degraded/shed outcome, or served p99 over the deadline budget
#  11. scale smoke: a small 4-building campus solved by spatial
#      decomposition under a 30 s budget — the stitched design must pass
#      verify_design on the full un-partitioned instance and land within
#      10% of the monolithic solve's objective
#
# Run from the repository root:  ./scripts/tier1.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier1: cargo build --release =="
cargo build --release

echo "== tier1: cargo test -q =="
cargo test -q

echo "== tier1: fault injection (seeded solver recovery paths) =="
cargo test -q -p milp --test fault_injection

echo "== tier1: degradation ladder =="
cargo test -q -p archex ladder

echo "== tier1: cargo clippy --workspace -- -D warnings =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier1: perf smoke (table3 [50/20] row, 30 s budget) =="
# Hard gate: the row must produce a feasible design (an objective) within
# the 30 s solver budget without crashing, going infeasible, or failing
# numerically. Solving all the way to Optimal inside 30 s is the
# aspirational bar, but wall time on this row swings ~2x run-to-run (the
# solver's diving heuristics are wall-clock-windowed; see README
# "Parallel solving"), so non-Optimal only warns.
T3_SMOKE_JSON="$(mktemp)"
trap 'rm -f "$T3_SMOKE_JSON"' EXIT
T3_SKIP_FULL=1 T3_ROWS=1 T3_TL=30 T3_HEUR_TL=10 T3_THREADS= T3_JSON="$T3_SMOKE_JSON" \
    cargo run --release -q -p bench --bin table3
if ! grep -Eq '"kind":"row".*"status":"(Optimal|LimitFeasible)","objective":[0-9]' \
    "$T3_SMOKE_JSON"; then
    echo "tier1: perf smoke FAILED — [50/20] row found no feasible design in 30 s:" >&2
    cat "$T3_SMOKE_JSON" >&2
    exit 1
fi
if ! grep -q '"kind":"row".*"status":"Optimal"' "$T3_SMOKE_JSON"; then
    echo "tier1: perf smoke WARNING — [50/20] row feasible but not Optimal in 30 s" >&2
fi

echo "== tier1: cuts smoke ([50/20] row, cuts on vs off) =="
# The table3 run above also emits the cut ablation records. Root
# separation must actually fire on this workload, and enabling cuts must
# not degrade the solve status.
cuts_on_rec="$(grep -o '"kind":"cuts_on"[^}]*' "$T3_SMOKE_JSON")"
cuts_off_rec="$(grep -o '"kind":"cuts_off"[^}]*' "$T3_SMOKE_JSON")"
applied="$(echo "$cuts_on_rec" | sed -n 's/.*"cuts_applied":\([0-9]*\).*/\1/p')"
if [ -z "${applied:-}" ] || [ "$applied" -eq 0 ]; then
    echo "tier1: cuts smoke FAILED — no cuts applied on the [50/20] row:" >&2
    echo "$cuts_on_rec" >&2
    exit 1
fi
status_rank() {
    case "$1" in
        Optimal) echo 2 ;;
        LimitFeasible) echo 1 ;;
        *) echo 0 ;;
    esac
}
on_status="$(echo "$cuts_on_rec" | sed -n 's/.*"status":"\([A-Za-z]*\)".*/\1/p')"
off_status="$(echo "$cuts_off_rec" | sed -n 's/.*"status":"\([A-Za-z]*\)".*/\1/p')"
if [ "$(status_rank "$on_status")" -lt "$(status_rank "$off_status")" ]; then
    echo "tier1: cuts smoke FAILED — cuts-on status $on_status worse than cuts-off $off_status" >&2
    exit 1
fi
echo "tier1: cuts smoke OK ($applied cuts applied, $on_status vs $off_status)"

echo "== tier1: pricing smoke ([50/20] row, branch-and-price from K*=2) =="
# The same table3 run also emits the pricing ablation records. The
# dual-driven path oracle must actually price columns on this workload (a
# two-candidate seed is not optimal on its own), pricing must not degrade
# the solve status vs the plain K*=10 encoding, and when both sides prove
# optimality the priced objective must match or beat the plain one —
# branch-and-price recovers what the truncation dropped and may improve
# on it by recombining link-universe edges into unseen paths (table3
# independently re-verifies every priced design before recording it).
pr_on_rec="$(grep -o '"kind":"pricing_on"[^}]*' "$T3_SMOKE_JSON")"
pr_off_rec="$(grep -o '"kind":"pricing_off"[^}]*' "$T3_SMOKE_JSON")"
priced="$(echo "$pr_on_rec" | sed -n 's/.*"cols_priced":\([0-9]*\).*/\1/p')"
if [ -z "${priced:-}" ] || [ "$priced" -eq 0 ]; then
    echo "tier1: pricing smoke FAILED — no columns priced on the [50/20] row:" >&2
    echo "$pr_on_rec" >&2
    exit 1
fi
pron_status="$(echo "$pr_on_rec" | sed -n 's/.*"status":"\([A-Za-z]*\)".*/\1/p')"
proff_status="$(echo "$pr_off_rec" | sed -n 's/.*"status":"\([A-Za-z]*\)".*/\1/p')"
pron_obj="$(echo "$pr_on_rec" | sed -n 's/.*"objective":\([0-9.eE+-]*\).*/\1/p')"
proff_obj="$(echo "$pr_off_rec" | sed -n 's/.*"objective":\([0-9.eE+-]*\).*/\1/p')"
# The priced side must deliver *a* verified design within the budget
# (table3 aborts on any design that fails independent re-verification).
if [ -z "${pron_obj:-}" ]; then
    echo "tier1: pricing smoke FAILED — pricing_on produced no feasible design (status $pron_status):" >&2
    echo "$pr_on_rec" >&2
    exit 1
fi
# When both sides prove optimality, match-or-beat is a hard guarantee.
# Under the 30 s smoke budget the priced model — which optimizes over a
# strictly larger path space — often cannot finish its proof while the
# plain K* = 10 encoding can, and its incumbent at the cutoff is
# trajectory-dependent; that regime only warns (the deterministic
# small-instance tests in crates/core pin the match-or-beat guarantee).
if [ "$pron_status" = "Optimal" ] && [ "$proff_status" = "Optimal" ]; then
    if ! awk -v a="$pron_obj" -v b="$proff_obj" \
        'BEGIN { exit !(a <= b + 1e-4 * (1 + (b < 0 ? -b : b))) }'; then
        echo "tier1: pricing smoke FAILED — pricing_on objective $pron_obj worse than pricing_off $proff_obj" >&2
        exit 1
    fi
elif [ "$(status_rank "$pron_status")" -lt "$(status_rank "$proff_status")" ]; then
    echo "tier1: pricing smoke WARNING — pricing_on status $pron_status (obj $pron_obj) vs pricing_off $proff_status (obj ${proff_obj:-none}) within the smoke budget" >&2
fi
echo "tier1: pricing smoke OK ($priced cols priced, $pron_status vs $proff_status)"

echo "== tier1: checkpoint smoke ([50/20] row, ckpt on vs off) =="
# The table3 run also emits the checkpoint ablation records. Frames must
# actually be written at the 250 ms cadence, and enabling checkpointing
# must not degrade the solve status. The < 5% wall-overhead acceptance
# bar only warns here — wall time on this row swings ~2x run-to-run, so
# a hard gate would flap; BENCH_solver.json records the numbers for the
# deterministic EXPERIMENTS.md ablation.
ck_on_rec="$(grep -o '"kind":"ckpt_on"[^}]*' "$T3_SMOKE_JSON")"
ck_off_rec="$(grep -o '"kind":"ckpt_off"[^}]*' "$T3_SMOKE_JSON")"
frames="$(echo "$ck_on_rec" | sed -n 's/.*"checkpoints_written":\([0-9]*\).*/\1/p')"
if [ -z "${frames:-}" ] || [ "$frames" -eq 0 ]; then
    echo "tier1: checkpoint smoke FAILED — no frames written on the [50/20] row:" >&2
    echo "$ck_on_rec" >&2
    exit 1
fi
ckon_status="$(echo "$ck_on_rec" | sed -n 's/.*"status":"\([A-Za-z]*\)".*/\1/p')"
ckoff_status="$(echo "$ck_off_rec" | sed -n 's/.*"status":"\([A-Za-z]*\)".*/\1/p')"
if [ "$(status_rank "$ckon_status")" -lt "$(status_rank "$ckoff_status")" ]; then
    echo "tier1: checkpoint smoke FAILED — ckpt_on status $ckon_status worse than ckpt_off $ckoff_status" >&2
    exit 1
fi
ckon_wall="$(echo "$ck_on_rec" | sed -n 's/.*"wall_s":\([0-9.eE+-]*\).*/\1/p')"
ckoff_wall="$(echo "$ck_off_rec" | sed -n 's/.*"wall_s":\([0-9.eE+-]*\).*/\1/p')"
if ! awk -v on="$ckon_wall" -v off="$ckoff_wall" 'BEGIN { exit !(on <= off * 1.05) }'; then
    echo "tier1: checkpoint smoke WARNING — ckpt_on wall $ckon_wall s vs ckpt_off $ckoff_wall s (> 5% overhead)" >&2
fi
echo "tier1: checkpoint smoke OK ($frames frames written, $ckon_status vs $ckoff_status)"

echo "== tier1: heuristic smoke ([50/20] row, LNS engine under a 10 s budget) =="
# The table3 run also emits the anytime-heuristics ablation records,
# solved under T3_HEUR_TL=10 — far too little for this row's optimality
# proof, which is the point: the LNS + tabu engine must still hand back
# a verified feasible design (table3 aborts on any design that fails
# independent re-verification, so an objective in the record *is* a
# verified design), and turning the engine on must never degrade the
# final status vs heur_off.
heur_on_rec="$(grep -o '"kind":"heur_on"[^}]*' "$T3_SMOKE_JSON")"
heur_off_rec="$(grep -o '"kind":"heur_off"[^}]*' "$T3_SMOKE_JSON")"
hon_status="$(echo "$heur_on_rec" | sed -n 's/.*"status":"\([A-Za-z]*\)".*/\1/p')"
hoff_status="$(echo "$heur_off_rec" | sed -n 's/.*"status":"\([A-Za-z]*\)".*/\1/p')"
hon_obj="$(echo "$heur_on_rec" | sed -n 's/.*"objective":\([0-9.eE+-]*\).*/\1/p')"
hon_1pct="$(echo "$heur_on_rec" | sed -n 's/.*"time_to_within_1pct_s":\([0-9.eE+-]*\).*/\1/p')"
if [ -z "${hon_obj:-}" ]; then
    echo "tier1: heuristic smoke FAILED — heur_on found no feasible design in 10 s (status $hon_status):" >&2
    echo "$heur_on_rec" >&2
    exit 1
fi
if [ "$(status_rank "$hon_status")" -lt "$(status_rank "$hoff_status")" ]; then
    echo "tier1: heuristic smoke FAILED — heur_on status $hon_status worse than heur_off $hoff_status" >&2
    exit 1
fi
echo "tier1: heuristic smoke OK (heur_on $hon_status obj $hon_obj, within-1% ${hon_1pct:-n/a} s, vs heur_off $hoff_status)"

echo "== tier1: durability smoke (SIGKILL mid-search, resume from frame) =="
# A checkpointed [50/20] solve is killed hard a few seconds in — exactly
# the failure the subsystem exists for — then resumed from its last
# durable frame. The resume must (a) actually continue from the frame,
# (b) deliver a design that survives independent re-verification, and
# (c) match or beat the uninterrupted reference when both prove
# optimality (a resumed search explores the identical node space).
DUR_FRAME="$(mktemp -u).frame"
trap 'rm -f "$T3_SMOKE_JSON" "$DUR_FRAME" "$DUR_FRAME.prev" "$DUR_FRAME.tmp"' EXIT
# The victim is exec'd directly (not through `cargo run`) so the SIGKILL
# hits the solver process itself.
cargo build --release -q -p bench --bin durability
ref_line="$(DUR_MODE=reference DUR_TL=60 ./target/release/durability | grep '^DUR ')"
DUR_MODE=victim DUR_TL=120 DUR_CKPT="$DUR_FRAME" ./target/release/durability &
victim_pid=$!
sleep 5
kill -9 "$victim_pid" 2>/dev/null || true
wait "$victim_pid" 2>/dev/null || true
if [ ! -f "$DUR_FRAME" ]; then
    echo "tier1: durability smoke FAILED — the killed victim left no frame at $DUR_FRAME" >&2
    exit 1
fi
res_line="$(DUR_MODE=resume DUR_TL=60 DUR_CKPT="$DUR_FRAME" ./target/release/durability | grep '^DUR ')"
echo "  reference: $ref_line"
echo "  resumed:   $res_line"
case "$res_line" in
    *"resumed=true"*) ;;
    *)
        echo "tier1: durability smoke FAILED — the resume run fell back to a cold solve" >&2
        exit 1 ;;
esac
case "$res_line" in
    *"verified=ok"*) ;;
    *)
        echo "tier1: durability smoke FAILED — resumed run produced no verified design" >&2
        exit 1 ;;
esac
ref_status="$(echo "$ref_line" | sed -n 's/.*status=\([A-Za-z]*\).*/\1/p')"
res_status="$(echo "$res_line" | sed -n 's/.*status=\([A-Za-z]*\).*/\1/p')"
ref_obj="$(echo "$ref_line" | sed -n 's/.*objective=\([0-9.eE+-]*\).*/\1/p')"
res_obj="$(echo "$res_line" | sed -n 's/.*objective=\([0-9.eE+-]*\).*/\1/p')"
if [ "$ref_status" = "Optimal" ] && [ "$res_status" = "Optimal" ]; then
    if ! awk -v a="$res_obj" -v b="$ref_obj" \
        'BEGIN { exit !(a <= b + 1e-4 * (1 + (b < 0 ? -b : b))) }'; then
        echo "tier1: durability smoke FAILED — resumed objective $res_obj worse than reference $ref_obj" >&2
        exit 1
    fi
elif [ "$(status_rank "$res_status")" -lt "$(status_rank "$ref_status")" ]; then
    echo "tier1: durability smoke WARNING — resumed status $res_status vs reference $ref_status within the smoke budget" >&2
fi
echo "tier1: durability smoke OK (resumed $res_status obj ${res_obj:-none} vs reference $ref_status obj ${ref_obj:-none})"

echo "== tier1: service smoke (fault-injected request storm) =="
# 24 seeded clients x 3 rounds of typed spec deltas against the
# design-session service, with two injected mid-request cancellations,
# one simulated worker death (session rebuilt from snapshot), and one
# poisoned delta. The storm binary does its own gating and exits
# non-zero on any panic, any request served past its deadline without a
# degraded/shed outcome, a served p99 over the deadline budget, or a
# fault that failed to land (see crates/bench/src/bin/storm.rs).
cargo build --release -q -p bench --bin storm
if ! STORM_MODE=smoke STORM_JSON= ./target/release/storm; then
    echo "tier1: service smoke FAILED" >&2
    exit 1
fi
echo "tier1: service smoke OK"

echo "== tier1: scale smoke (4-building campus, decomposed, 30 s budget) =="
# The city-scale bench in smoke mode runs only the small campus: a
# spatially decomposed solve (zone MILPs in parallel + gateway pricing +
# backbone stitch) whose stitched design must re-verify on the full
# un-partitioned instance and land within SCALE_SMOKE_GAP (10%) of the
# monolithic resilient-ladder baseline. The binary gates itself and
# exits non-zero on a missing/unverified design or an excessive gap.
SCALE_SMOKE_JSON="$(mktemp)"
trap 'rm -f "$T3_SMOKE_JSON" "$DUR_FRAME" "$DUR_FRAME.prev" "$DUR_FRAME.tmp" "$SCALE_SMOKE_JSON"' EXIT
if ! SCALE_MODE=smoke SCALE_JSON="$SCALE_SMOKE_JSON" \
    cargo run --release -q -p bench --bin scale; then
    echo "tier1: scale smoke FAILED" >&2
    exit 1
fi
echo "tier1: scale smoke OK"

echo "tier1: OK"
