//! # wsn_dse — wireless network design-space exploration
//!
//! A from-scratch Rust reproduction of *"Optimized Selection of Wireless
//! Network Topologies and Components via Efficient Pruning of Feasible
//! Paths"* (Kirov, Nuzzo, Passerone, Sangiovanni-Vincentelli — DAC 2018).
//!
//! This facade re-exports the full stack:
//!
//! * [`milp`] — sparse simplex + branch-and-bound MILP solver,
//! * [`lpmodel`] — symbolic modeling layer with exact linearizations,
//! * [`netgraph`] — graphs, Dijkstra, Yen's K-shortest loopless paths,
//! * [`channel`] — path loss (log-distance, multi-wall), BER, ETX,
//! * [`floorplan`] — floor plans, SVG subset parser/writer, generators,
//! * [`devlib`] — component libraries (ZigBee-class reference catalog),
//! * [`archex`] — the exploration core: templates, the pattern spec
//!   language, exact and Algorithm-1 approximate path encodings, the
//!   end-to-end [`archex::explore::explore`] driver, and design
//!   verification.
//!
//! # Quick start
//!
//! ```
//! use wsn_dse::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // 1. A template: one sensor, two relay candidates, a sink.
//! let mut t = NetworkTemplate::new();
//! t.add_node("s0", Point::new(0.0, 0.0), NodeRole::Sensor);
//! t.add_node("r0", Point::new(15.0, 5.0), NodeRole::Relay);
//! t.add_node("r1", Point::new(15.0, -5.0), NodeRole::Relay);
//! t.add_node("sink", Point::new(30.0, 0.0), NodeRole::Sink);
//! t.compute_path_loss(&LogDistance::indoor_2_4ghz());
//! let lib = catalog::zigbee_reference();
//! t.prune_links(&lib, -100.0, 10.0);
//!
//! // 2. Requirements in the pattern language.
//! let req = Requirements::from_spec_text(
//!     "p = has_path(sensors, sink)\n\
//!      min_signal_to_noise(12)\n\
//!      objective minimize cost",
//! )?;
//!
//! // 3. Explore with the approximate (Algorithm 1) encoding.
//! let out = explore(&t, &lib, &req, &ExploreOptions::approx(5))?;
//! let design = out.design.expect("feasible");
//! assert!(verify_design(&design, &t, &lib, &req).is_empty());
//! # Ok(())
//! # }
//! ```

pub use archex;
pub use channel;
pub use devlib;
pub use floorplan;
pub use lpmodel;
pub use milp;
pub use netgraph;

/// Convenient glob-import surface for examples and applications.
pub mod prelude {
    pub use archex::design::{verify_design, NetworkDesign};
    pub use archex::explore::{explore, ExploreOptions};
    pub use archex::kstar::{search_kstar, KstarSearch};
    pub use archex::requirements::Requirements;
    pub use archex::template::{NetworkTemplate, NodeRole};
    pub use archex::{EncodeMode, Table};
    pub use channel::{LinkBudget, LogDistance, Modulation, MultiWall, PathLossModel};
    pub use devlib::{catalog, DeviceKind, Library};
    pub use floorplan::{FloorPlan, Point};
    pub use milp::{Config, Status};
}
