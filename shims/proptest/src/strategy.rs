//! Value-generation strategies: the generator core of the shim.

use crate::test_runner::TestRng;
use core::marker::PhantomData;
use core::ops::{Range, RangeInclusive};
use rand::prelude::*;

/// A generator of random values of one type.
///
/// Unlike real proptest there is no value tree and no shrinking: a
/// strategy simply produces a value from the given RNG.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Produces one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A heap-allocated, type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy always yielding a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Uniform choice among boxed strategies; built by `prop_oneof!`.
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Wraps a non-empty list of alternatives.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one strategy");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = rng.gen_range(0..self.options.len());
        self.options[idx].generate(rng)
    }
}

/// Types with a canonical full-domain strategy (`any::<T>()`).
pub trait Arbitrary {
    /// Samples the full domain of the type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.gen_bool(0.5)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// See [`Arbitrary`].
pub struct Any<T>(PhantomData<T>);

/// Strategy over the full domain of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($S:ident => $idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A => 0);
impl_tuple_strategy!(A => 0, B => 1);
impl_tuple_strategy!(A => 0, B => 1, C => 2);
impl_tuple_strategy!(A => 0, B => 1, C => 2, D => 3);
impl_tuple_strategy!(A => 0, B => 1, C => 2, D => 3, E => 4);
impl_tuple_strategy!(A => 0, B => 1, C => 2, D => 3, E => 4, F => 5);
impl_tuple_strategy!(A => 0, B => 1, C => 2, D => 3, E => 4, F => 5, G => 6);
impl_tuple_strategy!(A => 0, B => 1, C => 2, D => 3, E => 4, F => 5, G => 6, H => 7);
impl_tuple_strategy!(A => 0, B => 1, C => 2, D => 3, E => 4, F => 5, G => 6, H => 7, I => 8);
impl_tuple_strategy!(A => 0, B => 1, C => 2, D => 3, E => 4, F => 5, G => 6, H => 7, I => 8, J => 9);

/// `&str` regex strategies. Supports the subset of regex syntax the
/// workspace's tests use: literal chars, `.`, escapes (`\n`, `\t`,
/// `\\`, `\d`), character classes with ranges, and the quantifiers
/// `{m,n}`, `{n}`, `{m,}`, `*`, `+`, `?` (unbounded repeats capped at
/// 32 extra items).
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for (choices, min, max) in &atoms {
            let n = rng.gen_range(*min..=*max);
            for _ in 0..n {
                out.push(choices[rng.gen_range(0..choices.len())]);
            }
        }
        out
    }
}

type Atom = (Vec<char>, usize, usize);

const PRINTABLE: RangeInclusive<char> = ' '..='~';

fn parse_pattern(pat: &str) -> Vec<Atom> {
    let mut atoms: Vec<Atom> = Vec::new();
    let mut chars = pat.chars().peekable();
    while let Some(c) = chars.next() {
        let choices: Vec<char> = match c {
            '[' => parse_class(&mut chars),
            '.' => PRINTABLE.collect(),
            '\\' => vec![unescape(chars.next().expect("dangling escape"))],
            '*' | '+' | '?' | '{' => {
                // quantifier without a preceding atom is malformed
                panic!("unsupported regex pattern: {pat:?}");
            }
            other => vec![other],
        };
        let (min, max) = parse_quantifier(&mut chars);
        atoms.push((choices, min, max));
    }
    atoms
}

fn parse_class(chars: &mut core::iter::Peekable<core::str::Chars<'_>>) -> Vec<char> {
    let mut members: Vec<char> = Vec::new();
    let mut pending: Option<char> = None;
    loop {
        let c = chars.next().expect("unterminated character class");
        match c {
            ']' => break,
            '-' if pending.is_some() && chars.peek() != Some(&']') => {
                let lo = pending.take().expect("range start");
                let hi = match chars.next().expect("range end") {
                    '\\' => unescape(chars.next().expect("dangling escape")),
                    h => h,
                };
                members.extend(lo..=hi);
            }
            '\\' => {
                members.extend(pending.take());
                pending = Some(unescape(chars.next().expect("dangling escape")));
            }
            other => {
                members.extend(pending.take());
                pending = Some(other);
            }
        }
    }
    members.extend(pending);
    assert!(!members.is_empty(), "empty character class");
    members
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        '0' => '\0',
        other => other,
    }
}

fn parse_quantifier(chars: &mut core::iter::Peekable<core::str::Chars<'_>>) -> (usize, usize) {
    match chars.peek() {
        Some('*') => {
            chars.next();
            (0, 32)
        }
        Some('+') => {
            chars.next();
            (1, 33)
        }
        Some('?') => {
            chars.next();
            (0, 1)
        }
        Some('{') => {
            chars.next();
            let mut body = String::new();
            for c in chars.by_ref() {
                if c == '}' {
                    break;
                }
                body.push(c);
            }
            match body.split_once(',') {
                None => {
                    let n: usize = body.trim().parse().expect("bad {n} quantifier");
                    (n, n)
                }
                Some((lo, hi)) => {
                    let min: usize = lo.trim().parse().expect("bad {m,n} quantifier");
                    let max: usize = if hi.trim().is_empty() {
                        min + 32
                    } else {
                        hi.trim().parse().expect("bad {m,n} quantifier")
                    };
                    (min, max)
                }
            }
        }
        _ => (1, 1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::rng_for;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = rng_for("strategy::tests", 0);
        let s = (2usize..=8, -5.0..5.0f64, 0..3);
        for _ in 0..500 {
            let (n, f, k) = s.generate(&mut rng);
            assert!((2..=8).contains(&n));
            assert!((-5.0..5.0).contains(&f));
            assert!((0..3).contains(&k));
        }
    }

    #[test]
    fn map_flat_map_compose() {
        let mut rng = rng_for("strategy::tests::map", 0);
        let s = (1usize..=4).prop_flat_map(|n| {
            crate::collection::vec(0.0..1.0f64, n).prop_map(move |v| (n, v))
        });
        for _ in 0..200 {
            let (n, v) = s.generate(&mut rng);
            assert_eq!(v.len(), n);
        }
    }

    #[test]
    fn oneof_covers_all_options() {
        let mut rng = rng_for("strategy::tests::oneof", 0);
        let s = crate::prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn string_regex_subset() {
        let mut rng = rng_for("strategy::tests::re", 0);
        for _ in 0..100 {
            let s = "[ -~\n]{0,300}".generate(&mut rng);
            assert!(s.chars().count() <= 300);
            assert!(s.chars().all(|c| c == '\n' || (' '..='~').contains(&c)));
            let t = "ab[0-9]{2}c?".generate(&mut rng);
            assert!(t.starts_with("ab"));
            let digits: String = t[2..4].to_string();
            assert!(digits.chars().all(|c| c.is_ascii_digit()));
        }
    }
}
