//! Offline stand-in for the subset of the `proptest` 1.x API this
//! workspace uses. The build environment has no registry access, so the
//! workspace vendors a tiny property-testing core instead of the real
//! crate (see DESIGN.md §7).
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case panics with the generated inputs
//!   visible in the assertion message; cases are deterministic per
//!   (test name, case index), so a failure reproduces exactly.
//! * **No persistence.** `.proptest-regressions` files are ignored.
//! * Strategies are plain generators: `generate(rng) -> Value`.
//!
//! The supported surface — `proptest!`, `prop_assert!`/`_eq!`/`_ne!`,
//! `prop_oneof!`, `Just`, `any`, numeric-range and `&str`-regex
//! strategies, tuples, `prop::collection::vec`, `prop_map`,
//! `prop_flat_map` — is exactly what the workspace's test suites call.

pub mod strategy;

/// Test-runner configuration and deterministic RNG plumbing.
pub mod test_runner {
    use rand::prelude::*;

    /// Per-block configuration; only `cases` is honored.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each test runs.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// Config running `cases` random cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// The RNG handed to strategies.
    pub type TestRng = StdRng;

    /// Deterministic RNG for one test case: seeded from the fully
    /// qualified test name and the case index, so runs are reproducible
    /// and independent of execution order.
    pub fn rng_for(test_name: &str, case: u64) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        StdRng::seed_from_u64(h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use core::ops::{Range, RangeInclusive};
    use rand::prelude::*;

    /// Inclusive length range for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange { min: r.start, max: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange { min: *r.start(), max: *r.end() }
        }
    }

    /// Strategy producing `Vec`s of `element` with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.gen_range(self.size.min..=self.size.max);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

/// Defines `#[test]` functions that run their body over many generated
/// inputs. Supports an optional `#![proptest_config(..)]` header and any
/// number of `fn name(pat in strategy, ..) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with ($cfg) $($rest)*);
    };
    (@with ($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let __strategies = ($(&$strat,)+);
                for __case in 0..__config.cases as u64 {
                    let mut __rng = $crate::test_runner::rng_for(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    let ($($pat,)+) =
                        $crate::strategy::Strategy::generate(&__strategies, &mut __rng);
                    // run the body in a Result-returning closure so
                    // `return Ok(())` skips a case, as in real proptest
                    let __outcome = (|| -> ::core::result::Result<(), ::core::convert::Infallible> {
                        $body
                        Ok(())
                    })();
                    if let Err(__never) = __outcome {
                        match __never {}
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Skips the current case when its precondition fails. Without
/// shrinking there is nothing to resume, so the case simply ends.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Ok(());
        }
    };
}

/// Strategy picking uniformly among the listed strategies (all must
/// yield the same value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::Strategy::boxed($s)),+])
    };
}
