//! Offline stand-in for the subset of the `criterion` 0.5 API this
//! workspace uses. The build environment has no registry access, so the
//! workspace vendors this minimal timing harness instead of the real
//! crate (see DESIGN.md §7).
//!
//! Each benchmark runs `sample_size` timed samples after a short warm-up
//! and prints min/mean/max wall time. Invoked with `--test` (as `cargo
//! test --benches` does), every benchmark body runs exactly once with no
//! timing so bench targets double as smoke tests.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark identifier: a function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Id rendered as `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", name.into(), parameter) }
    }

    /// Id rendered as the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo test --benches` runs harness=false bench binaries with
        // `--test`; honor it by running each body once, untimed.
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            test_mode: self.test_mode,
            _criterion: self,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let test_mode = self.test_mode;
        run_one(name, 10, test_mode, f);
        self
    }
}

/// A group of benchmarks sharing a name prefix and sample count.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    test_mode: bool,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Accepted for API compatibility; the shim sizes runs by samples only.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmarks `f` with `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.id);
        run_one(&label, self.sample_size, self.test_mode, |b| f(b, input));
        self
    }

    /// Benchmarks `f` with no input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().id);
        run_one(&label, self.sample_size, self.test_mode, f);
        self
    }

    /// Ends the group (printing is immediate, so this is a no-op).
    pub fn finish(self) {}
}

fn run_one<F>(label: &str, samples: usize, test_mode: bool, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    if test_mode {
        let mut b = Bencher { samples: 1, timings: Vec::new() };
        f(&mut b);
        println!("test {label} ... ok");
        return;
    }
    // warm-up pass, then the timed samples
    let mut b = Bencher { samples: 1, timings: Vec::new() };
    f(&mut b);
    let mut b = Bencher { samples, timings: Vec::with_capacity(samples) };
    f(&mut b);
    let min = b.timings.iter().copied().min().unwrap_or_default();
    let max = b.timings.iter().copied().max().unwrap_or_default();
    let mean = if b.timings.is_empty() {
        Duration::ZERO
    } else {
        b.timings.iter().sum::<Duration>() / b.timings.len() as u32
    };
    println!(
        "{label:<40} time: [{} {} {}]",
        fmt_duration(min),
        fmt_duration(mean),
        fmt_duration(max),
    );
}

fn fmt_duration(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.4} s")
    } else if s >= 1e-3 {
        format!("{:.4} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.4} µs", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: usize,
    timings: Vec<Duration>,
}

impl Bencher {
    /// Times `f`, once per configured sample.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        for _ in 0..self.samples {
            let start = Instant::now();
            let out = f();
            self.timings.push(start.elapsed());
            drop(black_box(out));
        }
    }
}

/// Bundles benchmark functions into one named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_requested_samples() {
        let mut c = Criterion { test_mode: false };
        let mut runs = 0usize;
        {
            let mut g = c.benchmark_group("shim");
            g.sample_size(4);
            g.bench_with_input(BenchmarkId::from_parameter(1), &1, |b, _| {
                b.iter(|| {
                    runs += 1;
                })
            });
            g.finish();
        }
        // one warm-up sample + four timed samples
        assert_eq!(runs, 5);
    }

    #[test]
    fn benchmark_ids_render() {
        assert_eq!(BenchmarkId::new("lp", 42).id, "lp/42");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }
}
