//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses: `StdRng::seed_from_u64`, `gen_range` over integer/float ranges,
//! and `gen_bool`. The build environment has no registry access, so the
//! workspace vendors this tiny deterministic implementation instead of
//! the real crate (see DESIGN.md §7). Everything is seeded explicitly in
//! this codebase, so no OS entropy source is needed.

use core::ops::{Range, RangeInclusive};

/// Raw 64-bit generator interface.
pub trait RngCore {
    /// Next raw 64 bits.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32 bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// User-facing sampling methods, blanket-implemented for every core RNG.
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive, ints or floats).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli sample: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Deterministic seeding interface.
pub trait SeedableRng: Sized {
    /// Builds an RNG from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The workspace's standard RNG: SplitMix64. Statistically fine for test
/// data and instance generation; not cryptographic.
#[derive(Debug, Clone)]
pub struct StdRng {
    state: u64,
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // one warm-up step decorrelates small consecutive seeds
        let mut rng = StdRng { state: seed };
        let _ = rng.next_u64();
        rng
    }
}

/// Uniform f64 in [0, 1) from 53 random mantissa bits.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges that can produce a uniform sample; mirrors `rand::distributions::
/// uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + off) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128 % span) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}

impl_int_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_float_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + (unit_f64(rng.next_u64()) as $t) * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                lo + (unit_f64(rng.next_u64()) as $t) * (hi - lo)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// RNG implementations, mirroring `rand::rngs`.
pub mod rngs {
    pub use super::StdRng;
}

/// Common imports, mirroring `rand::prelude`.
pub mod prelude {
    pub use super::{Rng, RngCore, SampleRange, SeedableRng, StdRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: i32 = rng.gen_range(-3..9);
            assert!((-3..9).contains(&v));
            let u: usize = rng.gen_range(2..=5);
            assert!((2..=5).contains(&u));
            let f: f64 = rng.gen_range(-1.5..2.5);
            assert!((-1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_frequency_tracks_p() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn distinct_seeds_decorrelate() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }
}
